//! Greedy single-way descent over partition space, shared by the
//! model-driven baseline objectives.
//!
//! The paper's own hill-climb (Figure 13) has a bespoke termination rule
//! (stop when the critical thread changes); the baselines instead descend a
//! scalar objective — Σ predicted CPI for throughput, CPI spread for
//! fairness — accepting the best strictly-improving single-way move until
//! none exists.

/// Greedily improves `eval` (lower is better) by moving one way at a time
/// between threads, honouring a per-thread floor. Deterministic: among
/// equal-valued moves the first (donor, receiver) in index order wins.
pub fn greedy_single_way_descent<F>(start: &[u32], min_ways: u32, eval: F) -> Vec<u32>
where
    F: Fn(&[u32]) -> f64,
{
    let n = start.len();
    let mut ways = start.to_vec();
    let mut current = eval(&ways);
    let mut scratch = ways.clone();
    for _ in 0..4096 {
        let mut best: Option<(f64, usize, usize)> = None;
        for donor in 0..n {
            if ways[donor] <= min_ways {
                continue;
            }
            for receiver in 0..n {
                if receiver == donor {
                    continue;
                }
                scratch.copy_from_slice(&ways);
                scratch[donor] -= 1;
                scratch[receiver] += 1;
                let v = eval(&scratch);
                if v < current - 1e-9 && best.is_none_or(|(b, _, _)| v < b) {
                    best = Some((v, donor, receiver));
                }
            }
        }
        let Some((v, donor, receiver)) = best else { break };
        ways[donor] -= 1;
        ways[receiver] += 1;
        current = v;
    }
    ways
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_known_optimum() {
        // eval = squared distance to [6, 2]: the descent must land there.
        let target = [6.0, 2.0];
        let out = greedy_single_way_descent(&[4, 4], 1, |w| {
            w.iter()
                .zip(target.iter())
                .map(|(&a, &b)| (a as f64 - b).powi(2))
                .sum()
        });
        assert_eq!(out, vec![6, 2]);
    }

    #[test]
    fn respects_floor() {
        let out = greedy_single_way_descent(&[4, 4], 2, |w| -(w[0] as f64));
        assert_eq!(out, vec![6, 2]); // drains thread 1 only to the floor
    }

    #[test]
    fn preserves_total() {
        let out = greedy_single_way_descent(&[16, 16, 16, 16], 1, |w| {
            // Arbitrary bumpy objective.
            w.iter().enumerate().map(|(i, &x)| ((x as f64) - (i as f64 * 5.0)).abs()).sum()
        });
        assert_eq!(out.iter().sum::<u32>(), 64);
        assert!(out.iter().all(|&w| w >= 1));
    }

    #[test]
    fn no_move_when_already_optimal() {
        let out = greedy_single_way_descent(&[3, 3], 1, |w| {
            (w[0] as f64 - 3.0).powi(2) + (w[1] as f64 - 3.0).powi(2)
        });
        assert_eq!(out, vec![3, 3]);
    }
}
