//! A fairness-oriented partitioner.
//!
//! The paper treats the statically equal partition (= private caches) as
//! the optimal-fairness configuration and compares against it directly
//! (Figure 19). This module additionally provides an *active* fairness
//! policy in the spirit of Kim et al.: using the same runtime CPI models as
//! the paper's scheme, it chooses the partition minimising the **spread**
//! (max − min) of predicted CPIs, i.e. it tries to make all threads equally
//! fast rather than making the slowest thread as fast as possible.
//!
//! On intra-application workloads this usually lands near the paper's
//! scheme when every thread is cache-sensitive, but diverges when speeding
//! the critical thread requires making an insensitive thread *look* unfair
//! — which is exactly the distinction §IV-B draws.

use icp_cmp_sim::simulator::IntervalReport;
use icp_core::policy::{PartitionDecision, Partitioner};

use crate::descent::greedy_single_way_descent;
use crate::tracker::CpiModelTracker;

/// Model-driven fairness policy: minimise predicted CPI spread.
#[derive(Clone, Debug)]
pub struct FairnessOrientedPolicy {
    tracker: CpiModelTracker,
    min_ways: u32,
}

impl FairnessOrientedPolicy {
    /// Creates the policy with a 1-way floor per thread.
    pub fn new() -> Self {
        FairnessOrientedPolicy { tracker: CpiModelTracker::new(), min_ways: 1 }
    }
}

impl Default for FairnessOrientedPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl Partitioner for FairnessOrientedPolicy {
    fn name(&self) -> &'static str {
        "fairness"
    }

    fn repartition(&mut self, report: &IntervalReport, total_ways: u32) -> PartitionDecision {
        self.tracker.observe(report);
        let n = report.threads.len();
        if !self.tracker.ready() {
            return PartitionDecision::Partition(self.tracker.bootstrap_partition(
                n,
                total_ways,
                self.min_ways,
            ));
        }
        let mut start: Vec<u32> = report.threads.iter().map(|t| t.ways).collect();
        // Rescale if the caller changed the budget between intervals (the
        // hierarchical OS level can).
        if start.iter().sum::<u32>() != total_ways {
            start = icp_core::proportional_allocation(
                &start.iter().map(|&w| w as f64).collect::<Vec<_>>(),
                total_ways,
                self.min_ways,
            );
        }
        let observed: Vec<f64> = report.threads.iter().map(|t| t.cpi).collect();
        let tracker = &self.tracker;
        let ways = greedy_single_way_descent(&start, self.min_ways, |w| {
            let preds: Vec<f64> = (0..n).map(|t| tracker.predict(t, w[t], observed[t])).collect();
            let max = preds.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = preds.iter().cloned().fold(f64::INFINITY, f64::min);
            max - min
        });
        PartitionDecision::Partition(ways)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icp_cmp_sim::simulator::{IntervalReport, ThreadIntervalStats};
    use icp_cmp_sim::stats::ThreadCounters;

    fn report(idx: usize, cpis: &[f64], ways: &[u32]) -> IntervalReport {
        let threads = cpis
            .iter()
            .zip(ways)
            .map(|(&cpi, &w)| ThreadIntervalStats {
                counters: ThreadCounters {
                    instructions: 1000,
                    active_cycles: (cpi * 1000.0) as u64,
                    ..Default::default()
                },
                cpi,
                ways: w,
            })
            .collect();
        IntervalReport { index: idx, threads, finished: false, wall_cycles: 0 }
    }

    #[test]
    fn bootstraps_then_partitions() {
        let mut p = FairnessOrientedPolicy::new();
        let d0 = p.repartition(&report(0, &[8.0, 2.0], &[8, 8]), 16);
        assert_eq!(d0, PartitionDecision::Partition(vec![8, 8]));
        let d1 = p.repartition(&report(1, &[8.0, 2.0], &[8, 8]), 16);
        let PartitionDecision::Partition(w1) = d1 else { panic!() };
        assert_eq!(w1, vec![9, 7]); // perturbed bootstrap
        // Third boundary: models fitted for both threads (8 and the
        // perturbed counts), policy switches to spread minimisation.
        let d2 = p.repartition(&report(2, &[7.0, 2.2], &w1), 16);
        let PartitionDecision::Partition(w2) = d2 else { panic!() };
        assert_eq!(w2.iter().sum::<u32>(), 16);
        // The slow thread should not *lose* ways under fairness.
        assert!(w2[0] >= 8, "{w2:?}");
    }

    #[test]
    fn name() {
        assert_eq!(FairnessOrientedPolicy::new().name(), "fairness");
    }
}
