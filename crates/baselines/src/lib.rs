//! Baseline cache-management schemes the paper compares against.
//!
//! * [`SharedCachePolicy`] — a plain shared L2 with global LRU and no
//!   partitioning (Figure 20's baseline).
//! * [`StaticEqualPolicy`] — a fixed equal partition, equivalent to private
//!   per-core caches and, per the paper, to the optimal-fairness schemes
//!   of Kim et al. / Chang & Sohi (Figure 19's baseline).
//! * [`StaticPolicy`] — an arbitrary fixed partition (used for the
//!   cache-sensitivity sweeps of Figure 10 and for ablations).
//! * [`UcpThroughputPolicy`] — a throughput-oriented scheme in the style of
//!   Suh et al. / UCP: utility-monitor profiling plus lookahead
//!   marginal-utility allocation, maximising total hits regardless of
//!   which thread is critical (Figure 21's baseline).
//! * [`ModelThroughputPolicy`] — the same spline models as the paper's
//!   scheme but optimising ΣCPI instead of max-CPI; isolates the effect of
//!   the *objective* from the effect of the *machinery* (ablation).
//! * [`FairnessOrientedPolicy`] — minimises the spread of predicted CPIs
//!   (an idealised fairness objective beyond the static-equal proxy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod descent;
pub mod fairness;
pub mod set_partition;
pub mod statics;
pub mod throughput;
pub mod tracker;

pub use fairness::FairnessOrientedPolicy;
pub use set_partition::SetPartitionAdapter;
pub use statics::{SharedCachePolicy, StaticEqualPolicy, StaticPolicy};
pub use throughput::{ModelThroughputPolicy, UcpThroughputPolicy};
