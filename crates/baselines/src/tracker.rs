//! Shared bookkeeping for model-driven baseline policies: per-thread CPI
//! model maintenance plus the two-boundary bootstrap that guarantees every
//! model sees at least two distinct way counts.

use icp_cmp_sim::simulator::IntervalReport;
use icp_core::model::ThreadCpiModel;

/// Tracks per-thread CPI models across interval boundaries.
#[derive(Clone, Debug, Default)]
pub struct CpiModelTracker {
    models: Vec<ThreadCpiModel>,
    intervals_seen: usize,
}

impl CpiModelTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds an interval report into the models. The very first interval
    /// is used only for sequencing, not for model evidence — its CPIs are
    /// inflated by compulsory misses (cold caches).
    pub fn observe(&mut self, report: &IntervalReport) {
        let n = report.threads.len();
        if self.models.len() != n {
            self.models = vec![ThreadCpiModel::new(); n];
        }
        if self.intervals_seen > 0 {
            for (t, ts) in report.threads.iter().enumerate() {
                if ts.counters.instructions > 0 {
                    self.models[t].observe(ts.ways, ts.cpi);
                }
            }
        }
        self.intervals_seen += 1;
    }

    /// The models (empty until the first observation).
    pub fn models(&self) -> &[ThreadCpiModel] {
        &self.models
    }

    /// Number of boundaries observed.
    pub fn intervals_seen(&self) -> usize {
        self.intervals_seen
    }

    /// True once every thread's model can predict (≥ 2 distinct way counts
    /// seen) and the bootstrap period is over.
    pub fn ready(&self) -> bool {
        self.intervals_seen > 2
            && !self.models.is_empty()
            && self.models.iter().all(|m| m.distinct_points() >= 2)
    }

    /// Predicted CPI of thread `t` at `ways`, with a fallback for unready
    /// models.
    pub fn predict(&self, t: usize, ways: u32, fallback: f64) -> f64 {
        self.models[t].predict(ways).unwrap_or(fallback)
    }

    /// Bootstrap partition for the early boundaries: an equal split,
    /// perturbed on the second boundary (odd threads lend a way to even
    /// threads) so every model collects two distinct way counts.
    pub fn bootstrap_partition(&self, threads: usize, total_ways: u32, min_ways: u32) -> Vec<u32> {
        let mut ways = icp_cmp_sim::l2::equal_split(total_ways, threads);
        if self.intervals_seen >= 2 && threads >= 2 {
            let mut i = 0;
            while i + 1 < threads {
                if ways[i + 1] > min_ways {
                    ways[i] += 1;
                    ways[i + 1] -= 1;
                }
                i += 2;
            }
        }
        ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icp_cmp_sim::simulator::{IntervalReport, ThreadIntervalStats};
    use icp_cmp_sim::stats::ThreadCounters;

    fn report(idx: usize, cpis: &[f64], ways: &[u32]) -> IntervalReport {
        let threads = cpis
            .iter()
            .zip(ways)
            .map(|(&cpi, &w)| ThreadIntervalStats {
                counters: ThreadCounters {
                    instructions: 1000,
                    active_cycles: (cpi * 1000.0) as u64,
                    ..Default::default()
                },
                cpi,
                ways: w,
            })
            .collect();
        IntervalReport { index: idx, threads, finished: false, wall_cycles: 0 }
    }

    #[test]
    fn becomes_ready_after_distinct_observations() {
        let mut tr = CpiModelTracker::new();
        assert!(!tr.ready());
        tr.observe(&report(0, &[4.0, 5.0], &[8, 8]));
        assert!(!tr.ready());
        tr.observe(&report(1, &[4.0, 5.0], &[9, 7]));
        assert!(!tr.ready()); // bootstrap period not over
        tr.observe(&report(2, &[4.0, 5.0], &[10, 6]));
        assert!(tr.ready());
    }

    #[test]
    fn bootstrap_perturbs_second_boundary() {
        let mut tr = CpiModelTracker::new();
        tr.observe(&report(0, &[1.0; 4], &[16; 4]));
        assert_eq!(tr.bootstrap_partition(4, 64, 1), vec![16; 4]);
        tr.observe(&report(1, &[1.0; 4], &[16; 4]));
        assert_eq!(tr.bootstrap_partition(4, 64, 1), vec![17, 15, 17, 15]);
    }

    #[test]
    fn predict_falls_back_until_fitted() {
        let mut tr = CpiModelTracker::new();
        // Report 0 is warm-up: sequencing only, no model evidence.
        tr.observe(&report(0, &[9.0, 9.0], &[8, 8]));
        assert_eq!(tr.predict(0, 12, 9.9), 9.9);
        tr.observe(&report(1, &[4.0, 5.0], &[8, 8]));
        assert_eq!(tr.predict(0, 12, 9.9), 9.9); // one knot: still fallback
        tr.observe(&report(2, &[3.0, 5.0], &[12, 4]));
        // Thread 0 now has points at 8 and 12: prediction interpolates.
        let p = tr.predict(0, 10, 9.9);
        assert!(p > 3.0 && p < 4.0, "{p}");
    }

    #[test]
    fn first_report_is_warmup_only() {
        let mut tr = CpiModelTracker::new();
        tr.observe(&report(0, &[42.0], &[8]));
        assert_eq!(tr.models()[0].distinct_points(), 0);
        assert_eq!(tr.intervals_seen(), 1);
    }
}
