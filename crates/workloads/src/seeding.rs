//! The seed-derivation chain for synthetic streams.
//!
//! Every access stream in a run must be (a) reproducible from one `u64`
//! master seed and (b) statistically independent of every other stream —
//! per-thread generation (including the pipelined producer threads of
//! `icp_cmp_sim::PipelinedStream`) relies on thread `t`'s RNG never
//! depending on when, or whether, thread `u`'s events are drawn.
//!
//! The chain, fixed for all time because simulation digests pin it:
//!
//! ```text
//! master_state = seed XOR STREAM_SEED_TAG        (namespace the seed)
//!      │  splitmix64 × 4                          (256-bit expansion)
//!      ▼
//! master xoshiro256++ M
//!      │  M.next_u64() XOR thread · FORK_MULT     (one fork per stream)
//!      ▼
//! thread seed  ──splitmix64 × 4──▶  thread xoshiro256++
//! ```
//!
//! Each stream constructs its *own* master from the seed and forks once
//! with its thread index as the label, so derivation is stateless: thread
//! 3's RNG can be built without touching threads 0–2. The splitmix64
//! expansion at both levels guarantees that adjacent seeds and adjacent
//! thread labels land in unrelated regions of xoshiro state space (the
//! xoshiro authors' recommended seeding discipline); the
//! `distinct_streams_across_suite` test holds every (benchmark, thread)
//! pair in the suite to pairwise-distinct output.

use icp_numeric::Xoshiro256;

/// Namespace tag XORed into the user seed before expansion, so a master
/// seed used here never collides with the same integer used by another
/// subsystem's RNG.
pub const STREAM_SEED_TAG: u64 = 0xC0FF_EE00_0000_0000;

/// Builds the master generator for a run seed.
pub fn master_rng(seed: u64) -> Xoshiro256 {
    Xoshiro256::seed_from_u64(seed ^ STREAM_SEED_TAG)
}

/// Derives the independent generator for one thread's stream.
///
/// Stateless: any thread's RNG is derivable directly from `(seed,
/// thread)`, which is what lets pipelined producers generate different
/// threads' events concurrently with bit-identical results.
pub fn thread_rng(seed: u64, thread: usize) -> Xoshiro256 {
    master_rng(seed).fork(thread as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_stateless_and_order_free() {
        // Building thread 5's RNG must not require (or be affected by)
        // building any other thread's.
        let direct = thread_rng(42, 5);
        let _ = thread_rng(42, 0);
        let _ = thread_rng(42, 3);
        assert_eq!(thread_rng(42, 5), direct);
    }

    #[test]
    fn adjacent_threads_are_decorrelated() {
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let mut a = thread_rng(seed, 0);
            let mut b = thread_rng(seed, 1);
            let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
            assert!(same <= 1, "seed {seed}: {same} collisions");
        }
    }

    #[test]
    fn adjacent_seeds_are_decorrelated() {
        let mut a = thread_rng(7, 0);
        let mut b = thread_rng(8, 0);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }
}
