//! The nine-benchmark synthetic suite.
//!
//! The paper evaluates nine applications from SPEC OMP (swim, mgrid, applu,
//! equake, art, wupwise) and NAS Parallel (cg, mg, ft). Each synthetic
//! stand-in here is a 4-thread parameter set chosen to reproduce the
//! *qualitative* per-thread behaviour the paper reports:
//!
//! * every benchmark has a clearly slowest (critical path) thread;
//! * mgrid's spread mirrors §IV-A1 ("thread 3 performs exceedingly well …
//!   held back by thread 2");
//! * cg's critical thread is thread 3, as in the Figure 18 snapshot;
//! * swim has strong per-thread phase behaviour (Figures 6–7) and threads
//!   with very different cache sensitivity (Figure 10);
//! * wupwise, mg and ft have working sets that (mostly) fit in the cache —
//!   these are the paper's "three benchmarks [with] only a small benefit"
//!   over a shared cache (§VII-B);
//! * sharing fractions average ≈ 10–12% of accesses (Figure 8).
//!
//! Working-set sizes are fractions of L2 capacity, so the suite behaves the
//! same on the scaled-down test cache and the paper-sized 1 MB cache.

use crate::spec::{BenchmarkSpec, PhaseSpec, ThreadSpec};

/// Convenience constructor for a phase.
fn phase(instructions: u64, ws: f64, theta: f64, mem: f64, shared: f64) -> PhaseSpec {
    PhaseSpec { instructions, ws_fraction: ws, theta, mem_ratio: mem, shared_fraction: shared, mlp: 1.0, write_fraction: 0.3 }
}

/// Convenience constructor for a steady (single-phase) thread.
fn steady(ws: f64, theta: f64, mem: f64, shared: f64) -> ThreadSpec {
    ThreadSpec::steady(ws, theta, mem, shared)
}

/// Default section structure: 10 sections of 12 k instructions per thread
/// (before workload scaling).
const SECTIONS: u32 = 10;
const SECTION_INSTS: u64 = 12_000;

fn bench(
    name: &'static str,
    threads: Vec<ThreadSpec>,
    shared_ws: f64,
    shared_theta: f64,
) -> BenchmarkSpec {
    BenchmarkSpec {
        name,
        threads,
        shared_ws_fraction: shared_ws,
        shared_region_id: 0,
        shared_theta,
        sections: SECTIONS,
        section_instructions: SECTION_INSTS,
    }
}

/// SPEC OMP `swim`: a cache-hungry critical thread squeezed by a
/// streaming polluter, plus a tiny thread and a phase-changing medium
/// thread (the Figures 6-7 subject).
pub fn swim() -> BenchmarkSpec {
    bench(
        "swim",
        vec![
            steady(4.50, 0.75, 0.11, 0.08), // t0: critical, cache-sensitive
            steady(0.05, 1.00, 0.28, 0.10), // t1: tiny WS, fast
            ThreadSpec {
                phases: vec![
                    phase(30_000, 0.35, 0.45, 0.20, 0.10).with_mlp(4.0),
                    phase(30_000, 0.12, 0.90, 0.18, 0.10),
                ],
            }, // t2: phase behaviour (Figures 6-7)
            steady(4.00, 0.40, 0.14, 0.06).with_mlp(6.0), // t3: polluter
        ],
        0.10,
        0.85,
    )
}

/// SPEC OMP `mgrid`: thread 1 is the laggard, thread 3 exceedingly good
/// (the paper's §IV-A1 "thread 2 poor / thread 3 excellent" example,
/// 0-based).
pub fn mgrid() -> BenchmarkSpec {
    bench(
        "mgrid",
        vec![
            steady(0.25, 0.85, 0.30, 0.08),
            steady(4.50, 0.74, 0.13, 0.06), // t1: critical
            steady(3.50, 0.40, 0.10, 0.08).with_mlp(6.0), // t2: polluter
            steady(0.04, 1.10, 0.26, 0.10), // t3: excellent
        ],
        0.08,
        0.9,
    )
}

/// SPEC OMP `applu`: moderate heterogeneity; one hungry critical thread
/// and a lighter polluter.
pub fn applu() -> BenchmarkSpec {
    bench(
        "applu",
        vec![
            steady(0.30, 0.80, 0.30, 0.12),
            steady(4.50, 0.74, 0.12, 0.10), // t1: critical
            steady(0.10, 0.95, 0.26, 0.12),
            steady(3.50, 0.40, 0.11, 0.10).with_mlp(5.0), // t3: polluter
        ],
        0.12,
        0.8,
    )
}

/// SPEC OMP `equake`: large irregular working set on thread 3, a strong
/// streaming polluter, higher sharing (unstructured mesh).
pub fn equake() -> BenchmarkSpec {
    bench(
        "equake",
        vec![
            steady(0.20, 0.85, 0.30, 0.15),
            steady(4.00, 0.42, 0.12, 0.10).with_mlp(7.0), // t1: polluter
            steady(0.08, 0.95, 0.26, 0.16),
            steady(4.50, 0.74, 0.13, 0.12), // t3: critical
        ],
        0.14,
        0.8,
    )
}

/// SPEC OMP `art`: the "utility trap" — two sharp-knee minors with high
/// hit utility (a throughput scheme serves them first) and a shallow-curve
/// critical thread.
pub fn art() -> BenchmarkSpec {
    bench(
        "art",
        vec![
            steady(0.22, 1.05, 0.28, 0.08), // t0: sharp knee, high utility
            steady(0.20, 1.05, 0.28, 0.10), // t1: sharp knee, high utility
            steady(4.50, 0.72, 0.13, 0.08), // t2: critical, shallow curve
            steady(3.50, 0.40, 0.12, 0.10).with_mlp(5.0), // t3: polluter
        ],
        0.10,
        0.85,
    )
}

/// SPEC OMP `wupwise`: small working sets everywhere — one of the paper's
/// three benchmarks where dynamic partitioning barely beats a shared cache.
pub fn wupwise() -> BenchmarkSpec {
    bench(
        "wupwise",
        vec![
            steady(0.12, 0.90, 0.24, 0.12),
            steady(0.06, 1.00, 0.22, 0.12),
            steady(0.62, 0.72, 0.26, 0.12),
            steady(0.08, 0.95, 0.23, 0.12),
        ],
        0.10,
        0.9,
    )
}

/// NAS `cg`: sparse matrix-vector; thread 3 critical as in the paper's
/// Figure 18 snapshot, with relatively high inter-thread sharing.
pub fn cg() -> BenchmarkSpec {
    bench(
        "cg",
        vec![
            steady(0.22, 0.85, 0.30, 0.18),
            steady(0.18, 0.88, 0.30, 0.18),
            steady(3.50, 0.42, 0.10, 0.12).with_mlp(6.0), // t2: polluter
            steady(4.50, 0.74, 0.13, 0.14), // t3: critical (Figure 18)
        ],
        0.16,
        0.75,
    )
}

/// NAS `mg`: multigrid with small per-thread sets — second small-benefit
/// benchmark.
pub fn mg() -> BenchmarkSpec {
    bench(
        "mg",
        vec![
            steady(0.14, 0.88, 0.25, 0.10),
            steady(0.08, 0.92, 0.24, 0.10),
            steady(0.72, 0.74, 0.26, 0.10),
            steady(0.06, 0.98, 0.23, 0.10),
        ],
        0.08,
        0.9,
    )
}

/// NAS `ft`: FFT with mostly-resident working sets and high sharing —
/// third small-benefit benchmark.
pub fn ft() -> BenchmarkSpec {
    bench(
        "ft",
        vec![
            steady(0.20, 0.85, 0.26, 0.20),
            steady(0.12, 0.90, 0.24, 0.20),
            steady(0.16, 0.87, 0.25, 0.20),
            steady(0.36, 0.78, 0.28, 0.20),
        ],
        0.15,
        0.8,
    )
}

/// All nine benchmarks in the order the paper's figures list them.
pub fn all() -> Vec<BenchmarkSpec> {
    vec![applu(), art(), equake(), swim(), mgrid(), wupwise(), cg(), mg(), ft()]
}

/// Looks a benchmark up by name.
pub fn by_name(name: &str) -> Option<BenchmarkSpec> {
    all().into_iter().find(|b| b.name == name)
}

/// The three benchmarks the paper singles out as having working sets small
/// enough that partitioning barely beats a plain shared cache (§VII-B).
pub fn small_working_set_names() -> [&'static str; 3] {
    ["wupwise", "mg", "ft"]
}

/// Renders the whole suite's parameters as a fixed-width text table — one
/// row per (benchmark, thread, phase): working-set fraction, Zipf exponent,
/// memory intensity, sharing, MLP and write fraction.
pub fn describe() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>3} {:>5} {:>7} {:>6} {:>5} {:>6} {:>4} {:>6}",
        "bench", "t", "phase", "ws", "theta", "mem", "shared", "mlp", "writes"
    );
    for b in all() {
        for (ti, ts) in b.threads.iter().enumerate() {
            for (pi, p) in ts.phases.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{:<8} {:>3} {:>5} {:>7.2} {:>6.2} {:>5.2} {:>6.2} {:>4.1} {:>6.2}",
                    b.name,
                    ti,
                    pi,
                    p.ws_fraction,
                    p.theta,
                    p.mem_ratio,
                    p.shared_fraction,
                    p.mlp,
                    p.write_fraction,
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_streams_across_suite() {
        // The seeding audit's end-to-end check: with one master seed, every
        // (benchmark, thread) stream in the suite is pairwise distinct —
        // the per-thread RNG forks and per-benchmark parameters never
        // collapse two streams onto the same event prefix.
        use icp_cmp_sim::stream::{AccessStream, ThreadEvent};

        let cfg = icp_cmp_sim::SystemConfig::scaled_down();
        let mut prefixes: Vec<(String, Vec<ThreadEvent>)> = Vec::new();
        for bench in all() {
            let mut streams = bench.build_streams(&cfg, crate::WorkloadScale::Test, 0x5EED);
            for (t, s) in streams.iter_mut().enumerate() {
                let prefix: Vec<ThreadEvent> = (0..64).map(|_| s.next_event()).collect();
                prefixes.push((format!("{}#{t}", bench.name), prefix));
            }
        }
        assert_eq!(prefixes.len(), 36);
        for i in 0..prefixes.len() {
            for j in i + 1..prefixes.len() {
                assert_ne!(
                    prefixes[i].1, prefixes[j].1,
                    "streams {} and {} coincide",
                    prefixes[i].0, prefixes[j].0
                );
            }
        }
    }

    #[test]
    fn suite_has_nine_valid_benchmarks() {
        let suite = all();
        assert_eq!(suite.len(), 9);
        for b in &suite {
            b.validate();
            assert_eq!(b.threads.len(), 4);
        }
    }

    #[test]
    fn names_are_unique_and_resolvable() {
        let suite = all();
        for b in &suite {
            let found = by_name(b.name).expect("by_name resolves");
            assert_eq!(found.name, b.name);
        }
        assert!(by_name("nonexistent").is_none());
        let mut names: Vec<_> = suite.iter().map(|b| b.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn small_ws_benchmarks_really_are_small() {
        // "Small" relative to the rest of the suite: no streaming polluter
        // (ws several times the cache) and a combined working set close to
        // cache capacity, so partitioning has little to move around.
        for name in small_working_set_names() {
            let b = by_name(name).unwrap();
            let total: f64 = b
                .threads
                .iter()
                .map(|t| t.phases.iter().map(|p| p.ws_fraction).fold(0.0, f64::max))
                .sum();
            assert!(total < 1.5, "{name}: combined ws {total} too large");
            for t in &b.threads {
                for p in &t.phases {
                    assert!(
                        p.ws_fraction <= 1.0,
                        "{name}: phase ws_fraction {} not small",
                        p.ws_fraction
                    );
                }
            }
        }
    }

    #[test]
    fn every_benchmark_has_a_big_thread_except_small_ws_ones() {
        let small = small_working_set_names();
        for b in all() {
            if small.contains(&b.name) {
                continue;
            }
            let max_ws = b
                .threads
                .iter()
                .flat_map(|t| t.phases.iter().map(|p| p.ws_fraction))
                .fold(0.0_f64, f64::max);
            assert!(max_ws > 0.6, "{}: expected a cache-hungry thread", b.name);
        }
    }

    #[test]
    fn describe_lists_every_phase() {
        let d = describe();
        let expected: usize = all()
            .iter()
            .map(|b| b.threads.iter().map(|t| t.phases.len()).sum::<usize>())
            .sum();
        assert_eq!(d.lines().count(), expected + 1); // + header
        for b in all() {
            assert!(d.contains(b.name), "{} missing", b.name);
        }
    }

    #[test]
    fn sharing_fractions_average_near_paper() {
        // Figure 8: inter-thread interaction averages about 11.5% of
        // accesses; our shared-access fractions should sit in that region.
        let suite = all();
        let mut sum = 0.0;
        let mut n = 0usize;
        for b in &suite {
            for t in &b.threads {
                for p in &t.phases {
                    sum += p.shared_fraction;
                    n += 1;
                }
            }
        }
        let avg = sum / n as f64;
        assert!((0.05..=0.25).contains(&avg), "avg shared fraction {avg}");
    }
}
