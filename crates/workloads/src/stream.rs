//! The synthetic access-stream generator.
//!
//! Each thread draws memory accesses from a Zipf distribution over its
//! private working set (plus a shared region), with Zipf *ranks* mapped to
//! cache lines through a multiplicative permutation so hot lines spread
//! uniformly across cache sets. Non-memory instruction gaps are sampled
//! around the phase's memory intensity. Sections of a fixed instruction
//! budget end in barriers, reproducing the parallel-section structure of
//! the paper's Figure 1.
//!
//! Generation is *columnar end to end*: the hot path
//! ([`SyntheticStream::fill_packed_batch`]) writes gap/addr/mlp/write
//! columns straight into a [`PackedBlock`], drawing its randomness from a
//! [`BufferedRng`] scratch filled in bulk — no per-event 24-byte
//! [`ThreadEvent`] is ever materialised. The scalar `generate` loop remains
//! as the reference path; both draw through the same buffered RNG, so the
//! two are interchangeable mid-stream and bit-identical (pinned by the
//! `stream_equivalence` suite).

use icp_cmp_sim::stream::{AccessStream, ThreadEvent};
use icp_cmp_sim::{PackedBlock, SystemConfig};
use icp_hot_path::{deterministic, hot_path};
use icp_numeric::{BufferedRng, FastMod, Zipf};

use crate::spec::{BenchmarkSpec, ThreadSpec, WorkloadScale};

/// Base address of thread `t`'s private region: far apart so regions never
/// alias.
fn private_base(thread: usize) -> u64 {
    ((thread as u64) + 1) << 40
}

/// Base address of application `id`'s shared region. Applications are
/// spaced far apart so their shared regions never alias.
fn shared_base(id: u64) -> u64 {
    (1 << 50) + (id << 45)
}

/// Greatest common divisor (Euclid).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A multiplier coprime with `n`, used as a bijective rank→line scramble so
/// that the hottest Zipf ranks land in distinct cache sets.
fn coprime_mult(n: u64) -> u64 {
    if n <= 2 {
        return 1;
    }
    let mut m = 0x9E37_79B1 % n;
    if m < 2 {
        m = 3 % n;
    }
    while gcd(m, n) != 1 {
        m += 1;
        if m >= n {
            m = 2;
        }
    }
    m
}

/// Materialised per-phase sampling state.
#[derive(Clone, Debug)]
struct PhaseRt {
    /// Scaled phase length in instructions.
    len: u64,
    zipf: Zipf,
    mult: u64,
    /// Div-free `% ws_lines` for the rank -> line mapping.
    ws_mod: FastMod,
    /// `2 * mean_gap + 1`: bound for the uniform gap sample.
    gap_bound: u64,
    shared_fraction: f64,
    /// Memory-level parallelism of this phase's misses, in tenths.
    mlp_tenths: u16,
    write_fraction: f64,
}

/// A deterministic synthetic access stream for one thread.
pub struct SyntheticStream {
    rng: BufferedRng,
    line_bytes: u64,
    /// Base address of this thread's private region.
    base: u64,
    phases: Vec<PhaseRt>,
    cur_phase: usize,
    insts_into_phase: u64,
    shared_zipf: Zipf,
    shared_mult: u64,
    /// Div-free `% shared_ws_lines` for the shared-region mapping.
    shared_ws_mod: FastMod,
    shared_base: u64,
    section_budget: u64,
    insts_left_in_section: u64,
    sections_left: u32,
    finished: bool,
}

impl SyntheticStream {
    /// Builds the stream for thread `thread` of `bench`.
    ///
    /// Streams for different threads of the same `(bench, seed)` pair are
    /// independent sub-streams of the same master seed, so a whole run is
    /// reproducible from one `u64`.
    #[deterministic]
    pub fn new(
        bench: &BenchmarkSpec,
        thread_spec: &ThreadSpec,
        thread: usize,
        cfg: &SystemConfig,
        scale: WorkloadScale,
        seed: u64,
    ) -> Self {
        let l2_lines = cfg.l2.size_bytes / cfg.l2.line_bytes;
        let rng = BufferedRng::new(crate::seeding::thread_rng(seed, thread));
        let factor = scale.factor();

        let phases = thread_spec
            .phases
            .iter()
            .map(|p| {
                let ws_lines = ((p.ws_fraction * l2_lines as f64) as u64).max(2);
                let mean_gap = (1.0 / p.mem_ratio - 1.0).max(0.0);
                PhaseRt {
                    len: scale_insts(p.instructions, factor),
                    zipf: Zipf::new(ws_lines, p.theta),
                    mult: coprime_mult(ws_lines),
                    ws_mod: FastMod::new(ws_lines),
                    gap_bound: (2.0 * mean_gap) as u64 + 1,
                    shared_fraction: p.shared_fraction,
                    mlp_tenths: (p.mlp * 10.0).round() as u16,
                    write_fraction: p.write_fraction,
                }
            })
            .collect();

        let shared_ws_lines = ((bench.shared_ws_fraction * l2_lines as f64) as u64).max(2);
        let section_budget = scale_insts(bench.section_instructions, factor).max(1);

        SyntheticStream {
            rng,
            line_bytes: cfg.l2.line_bytes,
            base: private_base(thread),
            phases,
            cur_phase: 0,
            insts_into_phase: 0,
            shared_zipf: Zipf::new(shared_ws_lines, bench.shared_theta),
            shared_mult: coprime_mult(shared_ws_lines),
            shared_ws_mod: FastMod::new(shared_ws_lines),
            shared_base: shared_base(bench.shared_region_id),
            section_budget,
            insts_left_in_section: section_budget,
            sections_left: bench.sections,
            finished: false,
        }
    }

    /// Advances the phase machine by `retired` instructions. Single-phase
    /// threads skip the bookkeeping entirely: `cur_phase` can never move,
    /// so the counter is unobservable and the emitted stream is identical.
    #[inline]
    fn advance_phase(&mut self, retired: u64) {
        if self.phases.len() == 1 {
            return;
        }
        self.insts_into_phase += retired;
        let len = self.phases[self.cur_phase].len;
        if self.insts_into_phase >= len {
            self.insts_into_phase = 0;
            self.cur_phase = (self.cur_phase + 1) % self.phases.len();
        }
    }

    /// Generates one event. This is the statically-dispatched core of both
    /// `next_event` and the native `fill_batch`; the current phase is
    /// borrowed in place (no per-event clone of the sampling state).
    #[inline]
    fn generate(&mut self) -> ThreadEvent {
        if self.finished {
            return ThreadEvent::Finished;
        }
        if self.insts_left_in_section == 0 {
            self.sections_left -= 1;
            if self.sections_left == 0 {
                self.finished = true;
                return ThreadEvent::Finished;
            }
            self.insts_left_in_section = self.section_budget;
            return ThreadEvent::Barrier;
        }
        let phase = &self.phases[self.cur_phase];
        // Gap: uniform in [0, 2*mean], clamped so the section budget is hit
        // exactly.
        let mut gap = self.rng.next_bounded(phase.gap_bound) as u32;
        if (gap as u64 + 1) > self.insts_left_in_section {
            gap = (self.insts_left_in_section - 1) as u32;
        }
        // `rank_for` always consumes its draw, matching `Zipf::sample` here
        // because every stream Zipf has n >= 2 (`.max(2)` at construction)
        // — the n == 1 draw-free early-out never applies.
        let addr = if self.rng.next_bool(phase.shared_fraction) {
            let rank = self.shared_zipf.rank_for(self.rng.next_f64());
            let line = self.shared_ws_mod.rem(rank * self.shared_mult);
            self.shared_base + line * self.line_bytes
        } else {
            let rank = phase.zipf.rank_for(self.rng.next_f64());
            let line = phase.ws_mod.rem(rank * phase.mult);
            self.base + line * self.line_bytes
        };
        let write = self.rng.next_bool(phase.write_fraction);
        let mlp_tenths = phase.mlp_tenths;
        let retired = gap as u64 + 1;
        self.insts_left_in_section -= retired;
        self.advance_phase(retired);
        ThreadEvent::Access { gap, addr, write, mlp_tenths }
    }

    /// Columnar generation: clears `out` and writes up to `cap` events
    /// (accesses plus barriers) straight into its packed columns, raising
    /// the block's `finished` flag when the stream ends — the native
    /// [`AccessStream::fill_packed`] path. Draws come from the same
    /// buffered RNG as [`Self::generate`] in the same order, so mixing the
    /// scalar and columnar APIs on one stream still yields the one
    /// canonical event sequence.
    #[deterministic]
    pub fn fill_packed_batch(&mut self, out: &mut PackedBlock, cap: usize) {
        out.clear();
        while out.len() < cap {
            if self.finished {
                out.set_finished(true);
                return;
            }
            if self.insts_left_in_section == 0 {
                self.sections_left -= 1;
                if self.sections_left == 0 {
                    self.finished = true;
                    out.set_finished(true);
                    return;
                }
                self.insts_left_in_section = self.section_budget;
                out.push_barrier();
                continue;
            }
            self.gen_accesses(out, cap);
        }
    }

    /// The columnar hot loop: generates accesses until the block holds
    /// `cap` events or the section budget runs out (section and stream
    /// boundaries are the outer loop's job).
    #[hot_path]
    fn gen_accesses(&mut self, out: &mut PackedBlock, cap: usize) {
        while out.len() < cap && self.insts_left_in_section > 0 {
            let phase = &self.phases[self.cur_phase];
            let mut gap = self.rng.next_bounded(phase.gap_bound) as u32;
            if (gap as u64 + 1) > self.insts_left_in_section {
                gap = (self.insts_left_in_section - 1) as u32;
            }
            // Draw order and arithmetic mirror `generate` exactly (see the
            // n >= 2 note there for why `rank_for` is equivalent).
            let addr = if self.rng.next_bool(phase.shared_fraction) {
                let rank = self.shared_zipf.rank_for(self.rng.next_f64());
                let line = self.shared_ws_mod.rem(rank * self.shared_mult);
                self.shared_base + line * self.line_bytes
            } else {
                let rank = phase.zipf.rank_for(self.rng.next_f64());
                let line = phase.ws_mod.rem(rank * phase.mult);
                self.base + line * self.line_bytes
            };
            let write = self.rng.next_bool(phase.write_fraction);
            out.push_access(gap, addr, write, phase.mlp_tenths);
            let retired = gap as u64 + 1;
            self.insts_left_in_section -= retired;
            self.advance_phase(retired);
        }
    }
}

/// Scales an instruction count, saturating (so `u64::MAX` stays "steady").
fn scale_insts(insts: u64, factor: f64) -> u64 {
    let scaled = insts as f64 * factor;
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        (scaled as u64).max(1)
    }
}

impl AccessStream for SyntheticStream {
    fn next_event(&mut self) -> ThreadEvent {
        self.generate()
    }

    /// Native batch generation: one virtual call covers a whole buffer of
    /// statically-dispatched `generate` calls.
    fn fill_batch(&mut self, out: &mut [ThreadEvent]) -> usize {
        let mut n = 0;
        while n < out.len() {
            let e = self.generate();
            out[n] = e;
            n += 1;
            if matches!(e, ThreadEvent::Finished) {
                break;
            }
        }
        n
    }

    /// Native columnar generation: events are written straight into the
    /// packed columns with no intermediate [`ThreadEvent`] buffer.
    fn fill_packed(&mut self, out: &mut PackedBlock, cap: usize) {
        self.fill_packed_batch(out, cap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{BenchmarkSpec, ThreadSpec, WorkloadScale};

    fn spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "t",
            threads: vec![
                ThreadSpec::steady(0.5, 0.7, 0.25, 0.2),
                ThreadSpec::steady(0.1, 0.9, 0.25, 0.2),
            ],
            shared_ws_fraction: 0.1,
            shared_region_id: 0,
            shared_theta: 0.8,
            sections: 3,
            section_instructions: 1_000,
        }
    }

    fn cfg() -> icp_cmp_sim::SystemConfig {
        let mut c = icp_cmp_sim::SystemConfig::scaled_down();
        c.cores = 2;
        c
    }

    fn drain(s: &mut SyntheticStream) -> (u64, u32, usize) {
        // Returns (instructions, barriers, accesses).
        let mut insts = 0;
        let mut barriers = 0;
        let mut accesses = 0;
        loop {
            match s.next_event() {
                ThreadEvent::Access { gap, .. } => {
                    insts += gap as u64 + 1;
                    accesses += 1;
                }
                ThreadEvent::Barrier => barriers += 1,
                ThreadEvent::Finished => return (insts, barriers, accesses),
            }
        }
    }

    #[test]
    fn section_budgets_are_exact() {
        let b = spec();
        let c = cfg();
        let mut s = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 7);
        let (insts, barriers, accesses) = drain(&mut s);
        assert_eq!(insts, 3_000); // 3 sections x 1000 instructions
        assert_eq!(barriers, 2); // barriers *between* sections
        assert!(accesses > 0);
        // Stream stays Finished afterwards.
        assert_eq!(s.next_event(), ThreadEvent::Finished);
    }

    #[test]
    fn deterministic_given_seed() {
        let b = spec();
        let c = cfg();
        let mut s1 = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 42);
        let mut s2 = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 42);
        for _ in 0..2000 {
            assert_eq!(s1.next_event(), s2.next_event());
        }
    }

    #[test]
    fn fill_batch_matches_next_event_sequence() {
        let b = spec();
        let c = cfg();
        let mut batched = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 13);
        let mut single = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 13);
        // Odd buffer size so batch boundaries never align with sections.
        let mut buf = [ThreadEvent::Finished; 17];
        loop {
            let n = batched.fill_batch(&mut buf);
            assert!(n > 0);
            for &e in &buf[..n] {
                assert_eq!(e, single.next_event());
            }
            if matches!(buf[n - 1], ThreadEvent::Finished) {
                break;
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let b = spec();
        let c = cfg();
        let mut s1 = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 1);
        let mut s2 = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 2);
        let mut diff = 0;
        for _ in 0..200 {
            if s1.next_event() != s2.next_event() {
                diff += 1;
            }
        }
        assert!(diff > 50);
    }

    #[test]
    fn threads_use_disjoint_private_regions_and_common_shared_region() {
        let b = spec();
        let c = cfg();
        let mut s0 = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 5);
        let mut s1 = SyntheticStream::new(&b, &b.threads[1], 1, &c, WorkloadScale::Test, 5);
        let collect = |s: &mut SyntheticStream| {
            let mut private = Vec::new();
            let mut shared = Vec::new();
            loop {
                match s.next_event() {
                    ThreadEvent::Access { addr, .. } => {
                        if addr >= shared_base(0) {
                            shared.push(addr);
                        } else {
                            private.push(addr);
                        }
                    }
                    ThreadEvent::Finished => break,
                    ThreadEvent::Barrier => {}
                }
            }
            (private, shared)
        };
        let (p0, sh0) = collect(&mut s0);
        let (p1, sh1) = collect(&mut s1);
        // Private regions are disjoint (different bases).
        assert!(p0.iter().all(|a| (private_base(0)..private_base(1)).contains(a)));
        assert!(p1.iter().all(|a| (private_base(1)..private_base(2)).contains(a)));
        // Shared accesses exist on both threads and overlap in lines.
        assert!(!sh0.is_empty() && !sh1.is_empty());
        let lines0: std::collections::HashSet<u64> = sh0.iter().map(|a| a / 64).collect();
        let overlap = sh1.iter().any(|a| lines0.contains(&(a / 64)));
        assert!(overlap, "shared regions must actually overlap");
    }

    #[test]
    fn mem_ratio_controls_gap_length() {
        let mut b = spec();
        b.threads[0].phases[0].mem_ratio = 0.5; // mean gap 1
        b.threads[1].phases[0].mem_ratio = 0.1; // mean gap 9
        let c = cfg();
        let mut dense = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 9);
        let mut sparse = SyntheticStream::new(&b, &b.threads[1], 1, &c, WorkloadScale::Test, 9);
        let (i0, _, a0) = drain(&mut dense);
        let (i1, _, a1) = drain(&mut sparse);
        let r0 = a0 as f64 / i0 as f64;
        let r1 = a1 as f64 / i1 as f64;
        assert!(r0 > 0.4, "dense stream mem ratio {r0}");
        assert!(r1 < 0.15, "sparse stream mem ratio {r1}");
    }

    #[test]
    fn working_set_respected() {
        let b = spec();
        let c = cfg();
        let l2_lines = c.l2.size_bytes / c.l2.line_bytes;
        let expected_ws = (0.5 * l2_lines as f64) as u64;
        let mut s = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 11);
        let mut lines = std::collections::HashSet::new();
        loop {
            match s.next_event() {
                ThreadEvent::Access { addr, .. } => {
                    if addr < shared_base(0) {
                        lines.insert(addr / 64);
                    }
                }
                ThreadEvent::Finished => break,
                ThreadEvent::Barrier => {}
            }
        }
        assert!(
            lines.len() as u64 <= expected_ws,
            "observed {} distinct lines > ws {expected_ws}",
            lines.len()
        );
        // Zipf covers a decent portion of the set in a few thousand draws.
        assert!(lines.len() as u64 > expected_ws / 10);
    }

    #[test]
    fn phase_machine_switches_working_sets() {
        // Two phases: tiny hot set, then a large one. Early accesses must
        // concentrate on few lines, later ones spread widely.
        let b = BenchmarkSpec {
            name: "p",
            threads: vec![ThreadSpec {
                phases: vec![
                    super::super::spec::PhaseSpec {
                        instructions: 2_000,
                        ws_fraction: 0.01,
                        theta: 0.9,
                        mem_ratio: 0.5,
                        shared_fraction: 0.0,
                        mlp: 1.0,
                        write_fraction: 0.3,
                    },
                    super::super::spec::PhaseSpec {
                        instructions: 2_000,
                        ws_fraction: 0.8,
                        theta: 0.5,
                        mem_ratio: 0.5,
                        shared_fraction: 0.0,
                        mlp: 1.0,
                        write_fraction: 0.3,
                    },
                ],
            }],
            shared_ws_fraction: 0.05,
            shared_region_id: 0,
            shared_theta: 0.8,
            sections: 1,
            section_instructions: 4_000,
        };
        let mut c = cfg();
        c.cores = 1;
        let mut s = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 3);
        let mut first = std::collections::HashSet::new();
        let mut second = std::collections::HashSet::new();
        let mut insts = 0u64;
        loop {
            match s.next_event() {
                ThreadEvent::Access { gap, addr, .. } => {
                    insts += gap as u64 + 1;
                    if insts <= 2_000 {
                        first.insert(addr / 64);
                    } else {
                        second.insert(addr / 64);
                    }
                }
                ThreadEvent::Finished => break,
                ThreadEvent::Barrier => {}
            }
        }
        assert!(second.len() > first.len() * 3, "first {} second {}", first.len(), second.len());
    }

    #[test]
    fn coprime_mult_is_coprime() {
        for n in [2u64, 3, 10, 64, 100, 4096, 12345] {
            let m = coprime_mult(n);
            assert_eq!(gcd(m, n), 1, "n={n} m={m}");
            assert!(m >= 1 && m < n.max(2));
        }
    }

    #[test]
    fn scale_saturates() {
        assert_eq!(scale_insts(u64::MAX, 10.0), u64::MAX);
        assert_eq!(scale_insts(100, 10.0), 1000);
        assert_eq!(scale_insts(0, 10.0), 1); // clamped to at least 1
    }

    /// Drains `s` through `fill_packed_batch` with block capacity `cap`,
    /// re-expanding every block into the scalar event sequence.
    fn drain_packed(s: &mut SyntheticStream, cap: usize) -> Vec<ThreadEvent> {
        let mut out = Vec::new();
        let mut block = PackedBlock::with_capacity(cap);
        loop {
            s.fill_packed_batch(&mut block, cap);
            assert!(block.len() <= cap, "fill_packed_batch overshot its cap");
            out.extend(block.to_events());
            if block.finished() {
                return out;
            }
            assert!(!block.is_empty(), "unfinished block must carry events");
        }
    }

    #[test]
    fn packed_generation_matches_scalar_generation() {
        let b = spec();
        let c = cfg();
        // Odd capacities so block boundaries never align with section
        // boundaries; 1 exercises the degenerate one-event block.
        for cap in [1usize, 17, 64, 4096] {
            for (t, ts) in b.threads.iter().enumerate() {
                let mut scalar =
                    SyntheticStream::new(&b, ts, t, &c, WorkloadScale::Test, 77);
                let mut packed =
                    SyntheticStream::new(&b, ts, t, &c, WorkloadScale::Test, 77);
                let events = drain_packed(&mut packed, cap);
                for (i, &e) in events.iter().enumerate() {
                    assert_eq!(e, scalar.next_event(), "cap {cap} thread {t} event {i}");
                }
                assert_eq!(events.last(), Some(&ThreadEvent::Finished));
                // Both streams stay Finished afterwards.
                packed.fill_packed_batch(&mut PackedBlock::default(), 8);
                assert_eq!(scalar.next_event(), ThreadEvent::Finished);
            }
        }
    }

    #[test]
    fn packed_and_scalar_apis_interleave_on_one_stream() {
        // Alternating generate() and fill_packed_batch() on a single stream
        // must still produce the one canonical sequence.
        let b = spec();
        let c = cfg();
        let mut mixed = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 3);
        let mut scalar = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 3);
        let mut block = PackedBlock::default();
        let mut finished = false;
        while !finished {
            for _ in 0..5 {
                let e = mixed.generate();
                assert_eq!(e, scalar.next_event());
                if matches!(e, ThreadEvent::Finished) {
                    finished = true;
                    break;
                }
            }
            if finished {
                break;
            }
            mixed.fill_packed_batch(&mut block, 13);
            for e in block.to_events() {
                assert_eq!(e, scalar.next_event());
                if matches!(e, ThreadEvent::Finished) {
                    finished = true;
                }
            }
        }
    }

    #[test]
    fn packed_cap_zero_is_empty_and_stateless() {
        let b = spec();
        let c = cfg();
        let mut s = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 21);
        let mut probe = SyntheticStream::new(&b, &b.threads[0], 0, &c, WorkloadScale::Test, 21);
        let mut block = PackedBlock::with_capacity(4);
        s.fill_packed_batch(&mut block, 0);
        assert!(block.is_empty() && !block.finished());
        // The zero-cap call consumed nothing: streams still agree.
        for _ in 0..100 {
            assert_eq!(s.next_event(), probe.next_event());
        }
    }
}
