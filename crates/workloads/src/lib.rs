//! Synthetic multithreaded workloads emulating the paper's benchmark suite.
//!
//! The paper evaluates nine OpenMP applications from NAS Parallel and SPEC
//! OMP. Real binaries are out of scope for a simulator library, so this
//! crate generates per-thread memory access streams whose *counter-level*
//! behaviour matches what the paper measures and exploits:
//!
//! * **Performance variability** (§IV-A1): threads of one application have
//!   different working-set sizes and locality, hence different CPIs; the
//!   slowest (critical path) thread dominates section time.
//! * **CPI ↔ L2-miss correlation** (Figure 5): in a blocking in-order core
//!   CPI is linear in misses, so the correlation emerges by construction.
//! * **Phase behaviour** (Figures 6–7): thread parameters change over time
//!   via per-thread phase machines.
//! * **Inter-thread interaction** (Figures 8–9): a fraction of accesses go
//!   to a shared region, producing constructive cross-thread hits, while
//!   capacity pressure produces destructive cross-thread evictions.
//! * **Cache sensitivity variability** (Figure 10): Zipf-over-working-set
//!   streams have smooth concave hits-vs-ways curves whose knee position
//!   depends on the working-set size, so threads differ in how much an
//!   extra way helps.
//!
//! Every stream is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod multiapp;
pub mod seeding;
pub mod spec;
pub mod stream;
pub mod suite;

pub use builder::WorkloadBuilder;
pub use multiapp::MultiAppWorkload;
pub use spec::{BenchmarkSpec, PhaseSpec, ThreadSpec, WorkloadScale};
pub use stream::SyntheticStream;
