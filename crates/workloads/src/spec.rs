//! Workload specifications: per-phase parameters, per-thread phase
//! machines, and whole-benchmark specs with barrier structure.

use std::sync::Arc;

use icp_cmp_sim::stream::AccessStream;
use icp_cmp_sim::{PackedTrace, SystemConfig};

use crate::stream::SyntheticStream;

/// Parameters of one execution phase of one thread.
///
/// Working-set sizes are expressed as a *fraction of the L2 capacity* so a
/// spec scales with the simulated cache (tests run a 256 KB L2, the paper
/// configuration a 1 MB one, and the phenomenology is preserved).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PhaseSpec {
    /// Phase length in instructions, before workload scaling.
    pub instructions: u64,
    /// Private working set as a fraction of total L2 lines. May exceed 1.0
    /// for streaming/thrashing phases.
    pub ws_fraction: f64,
    /// Zipf exponent of the reuse distribution: high = strong locality.
    pub theta: f64,
    /// Fraction of instructions that are memory operations.
    pub mem_ratio: f64,
    /// Fraction of memory accesses directed at the application's shared
    /// region.
    pub shared_fraction: f64,
    /// Memory-level parallelism of this phase's misses (≥ 1.0). Dependent
    /// (pointer-chasing) phases serialise misses (1.0); streaming phases
    /// overlap them (hardware prefetch / independent loads), which is what
    /// lets a thread occupy cache under LRU without paying full miss
    /// latency — the paper's "poor cache behaviour, little performance
    /// gain" polluter (§I).
    pub mlp: f64,
    /// Fraction of memory accesses that are stores. Stores dirty cache
    /// lines and generate writeback traffic; they do not change timing in
    /// the blocking-core model (write-buffer assumption).
    pub write_fraction: f64,
}

impl PhaseSpec {
    /// A convenient steady phase (no phase change over time, serial
    /// misses).
    pub fn steady(ws_fraction: f64, theta: f64, mem_ratio: f64, shared_fraction: f64) -> Self {
        PhaseSpec {
            instructions: u64::MAX,
            ws_fraction,
            theta,
            mem_ratio,
            shared_fraction,
            mlp: 1.0,
            write_fraction: 0.3,
        }
    }

    /// Sets the phase's memory-level parallelism.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        self.mlp = mlp;
        self
    }

    /// Validates parameter ranges.
    pub fn validate(&self) {
        assert!(self.instructions > 0, "phase length must be positive");
        assert!(self.ws_fraction > 0.0, "working set must be non-empty");
        assert!(self.theta > 0.0, "theta must be positive");
        assert!(
            self.mem_ratio > 0.0 && self.mem_ratio <= 1.0,
            "mem_ratio must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.shared_fraction),
            "shared_fraction must be in [0, 1]"
        );
        assert!(
            (1.0..=16.0).contains(&self.mlp),
            "mlp must be in [1, 16]"
        );
        assert!(
            (0.0..=1.0).contains(&self.write_fraction),
            "write_fraction must be in [0, 1]"
        );
    }
}

/// One thread's behaviour: a cyclic sequence of phases.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadSpec {
    /// Phases cycled in order for the lifetime of the thread.
    pub phases: Vec<PhaseSpec>,
}

impl ThreadSpec {
    /// A single-phase (steady) thread.
    pub fn steady(ws_fraction: f64, theta: f64, mem_ratio: f64, shared_fraction: f64) -> Self {
        ThreadSpec { phases: vec![PhaseSpec::steady(ws_fraction, theta, mem_ratio, shared_fraction)] }
    }

    /// Sets the memory-level parallelism of every phase.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        for p in &mut self.phases {
            p.mlp = mlp;
        }
        self
    }

    /// Validates all phases.
    pub fn validate(&self) {
        assert!(!self.phases.is_empty(), "thread needs at least one phase");
        for p in &self.phases {
            p.validate();
        }
    }
}

/// Pre-set scaling levels for workload length.
///
/// The paper runs 50 intervals of 15 M instructions. Simulating 750 M
/// instructions per configuration is possible but slow; the scaling factor
/// shrinks all instruction counts while the cache-relative working-set
/// fractions keep the *behaviour* identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum WorkloadScale {
    /// Fast unit/integration tests: a few hundred thousand instructions.
    Test,
    /// Figure reproduction runs: a few million instructions, enough for 50
    /// execution intervals of meaningful length.
    Figure,
    /// Close to the paper's scale (long; used only on demand).
    Paper,
}

impl WorkloadScale {
    /// Multiplier applied to every instruction count in a spec.
    pub fn factor(self) -> f64 {
        match self {
            WorkloadScale::Test => 1.0,
            WorkloadScale::Figure => 10.0,
            WorkloadScale::Paper => 400.0,
        }
    }
}

/// A whole application: per-thread phase machines plus the barrier
/// structure (§III-B) and the shared-data region.
///
/// # Examples
///
/// ```
/// use icp_cmp_sim::SystemConfig;
/// use icp_workloads::{suite, WorkloadScale};
///
/// let cfg = SystemConfig::scaled_down();
/// let spec = suite::cg();
/// let streams = spec.build_streams(&cfg, WorkloadScale::Test, 7);
/// assert_eq!(streams.len(), cfg.cores);
/// // Re-target to 8 cores for the Figure 22 study:
/// assert_eq!(spec.with_threads(8).threads.len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct BenchmarkSpec {
    /// Benchmark name (paper benchmark it stands in for).
    pub name: &'static str,
    /// One spec per thread. [`BenchmarkSpec::build_streams`] requires the
    /// simulated core count to match; [`BenchmarkSpec::with_threads`]
    /// re-targets a spec to another core count.
    pub threads: Vec<ThreadSpec>,
    /// Shared-region size as a fraction of L2 lines.
    pub shared_ws_fraction: f64,
    /// Distinguishes the shared regions of different *applications* running
    /// simultaneously (the hierarchical setting of §VI-C): streams built
    /// from specs with different ids never share data. Single-application
    /// experiments leave this at 0.
    pub shared_region_id: u64,
    /// Zipf exponent of shared-region accesses.
    pub shared_theta: f64,
    /// Number of barrier-delimited parallel sections.
    pub sections: u32,
    /// Instructions each thread retires per section, before scaling.
    pub section_instructions: u64,
}

impl BenchmarkSpec {
    /// Validates the whole spec.
    pub fn validate(&self) {
        assert!(!self.threads.is_empty(), "benchmark needs threads");
        for t in &self.threads {
            t.validate();
        }
        assert!(self.shared_ws_fraction > 0.0);
        assert!(self.shared_theta > 0.0);
        assert!(self.sections > 0);
        assert!(self.section_instructions > 0);
    }

    /// Total instructions one thread retires over the whole run (scaled).
    pub fn instructions_per_thread(&self, scale: WorkloadScale) -> u64 {
        let per_section = (self.section_instructions as f64 * scale.factor()) as u64;
        per_section * self.sections as u64
    }

    /// Builds one deterministic access stream per core.
    ///
    /// # Panics
    /// Panics if `cfg.cores != self.threads.len()` (use
    /// [`Self::with_threads`] first) or the spec is invalid.
    pub fn build_streams(
        &self,
        cfg: &SystemConfig,
        scale: WorkloadScale,
        seed: u64,
    ) -> Vec<Box<dyn AccessStream>> {
        self.validate();
        assert_eq!(
            cfg.cores,
            self.threads.len(),
            "spec has {} threads but system has {} cores",
            self.threads.len(),
            cfg.cores
        );
        self.threads
            .iter()
            .enumerate()
            .map(|(t, ts)| {
                Box::new(SyntheticStream::new(self, ts, t, cfg, scale, seed)) as Box<dyn AccessStream>
            })
            .collect()
    }

    /// Materialises every thread's stream once into shared packed traces.
    ///
    /// This is the generate-once half of the record-once/simulate-many
    /// pattern: each returned trace can serve any number of zero-copy
    /// [`PackedTrace::stream`] replays (one per partitioning scheme), and
    /// the generation cost — the Zipf sampling dominating stream cost — is
    /// paid exactly once. `max_events` bounds each thread's recording as
    /// [`icp_cmp_sim::Trace::record`] would; pass `usize::MAX` for the full
    /// run.
    ///
    /// # Panics
    /// Same conditions as [`Self::build_streams`].
    pub fn pack_streams(
        &self,
        cfg: &SystemConfig,
        scale: WorkloadScale,
        seed: u64,
        max_events: usize,
    ) -> Vec<Arc<PackedTrace>> {
        self.build_streams(cfg, scale, seed)
            .into_iter()
            .map(|mut s| Arc::new(PackedTrace::record(&mut s, max_events)))
            .collect()
    }

    /// [`Self::pack_streams`] with generation fanned over producer threads
    /// leased from the process core budget ([`icp_cmp_sim::budget`]).
    ///
    /// Thread streams are seeded from independent forks of the master RNG,
    /// so their recordings are order-independent: each producer generates
    /// a contiguous chunk of streams straight into packed columns, and
    /// concatenating chunks in thread order yields exactly the traces
    /// `pack_streams` would produce (asserted by the
    /// `parallel_pack_matches_sequential` test). Up to `threads - 1` extra
    /// workers are leased and returned at the join; with a dry pool the
    /// caller generates everything itself — bit-identical either way.
    ///
    /// # Panics
    /// Same conditions as [`Self::build_streams`].
    pub fn pack_streams_parallel(
        &self,
        cfg: &SystemConfig,
        scale: WorkloadScale,
        seed: u64,
        max_events: usize,
    ) -> Vec<Arc<PackedTrace>> {
        self.validate();
        assert_eq!(
            cfg.cores,
            self.threads.len(),
            "spec has {} threads but system has {} cores",
            self.threads.len(),
            cfg.cores
        );
        let n = self.threads.len();
        let record = |t: usize| {
            let mut s = SyntheticStream::new(self, &self.threads[t], t, cfg, scale, seed);
            Arc::new(PackedTrace::record(&mut s, max_events))
        };
        let lease = icp_cmp_sim::budget::current().lease(n.saturating_sub(1));
        let workers = (1 + lease.tokens()).min(n.max(1));
        if workers <= 1 || n <= 1 {
            return (0..n).map(record).collect();
        }
        // Contiguous chunks of thread indices, one per worker; the caller
        // works chunk 0 while the leased workers run the rest. Chunk
        // results concatenated in thread order reproduce the serial output.
        let base = n / workers;
        let extra = n % workers;
        let mut starts = Vec::with_capacity(workers + 1);
        let mut at = 0;
        for i in 0..workers {
            starts.push(at);
            at += base + usize::from(i < extra);
        }
        starts.push(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..workers)
                .map(|i| {
                    let range = starts[i]..starts[i + 1];
                    scope.spawn(move || range.map(record).collect::<Vec<_>>())
                })
                .collect();
            let mut traces: Vec<Arc<PackedTrace>> = (starts[0]..starts[1]).map(record).collect();
            for h in handles {
                match h.join() {
                    Ok(part) => traces.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            traces
        })
        // `lease` drops here: tokens return at the join boundary.
    }

    /// Re-targets the spec to `n` threads by cycling the existing thread
    /// profiles (used for the paper's 8-core sensitivity study, Figure 22).
    ///
    /// Per-thread working sets are scaled by `old_n / n`: an OpenMP
    /// application divides the same data among its threads, so running the
    /// same problem on more cores shrinks each thread's share. (Without
    /// this, an 8-thread run would carry twice the total working set of the
    /// 4-thread run and overwhelm the fixed-size L2.)
    pub fn with_threads(&self, n: usize) -> BenchmarkSpec {
        assert!(n > 0);
        let scale = self.threads.len() as f64 / n as f64;
        let threads: Vec<ThreadSpec> = (0..n)
            .map(|i| {
                let mut ts = self.threads[i % self.threads.len()].clone();
                for p in &mut ts.phases {
                    p.ws_fraction = (p.ws_fraction * scale).max(0.01);
                }
                ts
            })
            .collect();
        BenchmarkSpec { threads, ..self.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> BenchmarkSpec {
        BenchmarkSpec {
            name: "sample",
            threads: vec![
                ThreadSpec::steady(0.5, 0.6, 0.3, 0.1),
                ThreadSpec::steady(0.1, 0.9, 0.3, 0.1),
            ],
            shared_ws_fraction: 0.1,
            shared_region_id: 0,
            shared_theta: 0.8,
            sections: 4,
            section_instructions: 1000,
        }
    }

    #[test]
    fn validate_accepts_sane_spec() {
        sample_spec().validate();
    }

    #[test]
    #[should_panic(expected = "mem_ratio")]
    fn validate_rejects_bad_mem_ratio() {
        let mut s = sample_spec();
        s.threads[0].phases[0].mem_ratio = 1.5;
        s.validate();
    }

    #[test]
    #[should_panic(expected = "working set")]
    fn validate_rejects_empty_ws() {
        let mut s = sample_spec();
        s.threads[0].phases[0].ws_fraction = 0.0;
        s.validate();
    }

    #[test]
    fn instructions_per_thread_scales() {
        let s = sample_spec();
        assert_eq!(s.instructions_per_thread(WorkloadScale::Test), 4000);
        assert_eq!(s.instructions_per_thread(WorkloadScale::Figure), 40_000);
    }

    #[test]
    fn with_threads_cycles_profiles() {
        let s = sample_spec().with_threads(5);
        assert_eq!(s.threads.len(), 5);
        assert_eq!(s.threads[0], s.threads[2]);
        assert_eq!(s.threads[1], s.threads[3]);
        assert_eq!(s.threads[4], s.threads[0]);
    }

    #[test]
    #[should_panic(expected = "threads but system has")]
    fn build_streams_checks_core_count() {
        let s = sample_spec();
        let cfg = SystemConfig::scaled_down(); // 4 cores, spec has 2
        s.build_streams(&cfg, WorkloadScale::Test, 1);
    }

    #[test]
    fn parallel_pack_matches_sequential() {
        let s = sample_spec();
        let mut cfg = SystemConfig::scaled_down();
        cfg.cores = s.threads.len();
        for max_events in [usize::MAX, 100] {
            let seq = s.pack_streams(&cfg, WorkloadScale::Test, 9, max_events);
            let par = s.pack_streams_parallel(&cfg, WorkloadScale::Test, 9, max_events);
            assert_eq!(seq.len(), par.len());
            for (t, (a, b)) in seq.iter().zip(par.iter()).enumerate() {
                assert_eq!(a.to_events(), b.to_events(), "thread {t} max_events {max_events}");
            }
        }
    }
}
