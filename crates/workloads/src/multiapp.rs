//! Multi-application workload composition for the hierarchical setting
//! (paper §VI-C): several applications run simultaneously on one CMP, each
//! bound to a disjoint group of cores, each with its own private and shared
//! data regions.

use icp_cmp_sim::stream::AccessStream;
use icp_cmp_sim::SystemConfig;

use crate::spec::{BenchmarkSpec, WorkloadScale};
use crate::stream::SyntheticStream;

/// A co-scheduled set of applications.
///
/// # Examples
///
/// ```
/// use icp_workloads::{suite, MultiAppWorkload};
///
/// let w = MultiAppWorkload::new()
///     .add(&suite::swim(), 2)
///     .add(&suite::mg(), 2);
/// assert_eq!(w.total_threads(), 4);
/// assert_eq!(w.groups(), vec![vec![0, 1], vec![2, 3]]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct MultiAppWorkload {
    apps: Vec<BenchmarkSpec>,
}

impl MultiAppWorkload {
    /// Starts an empty composition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an application re-targeted to `threads` cores. Its shared
    /// region is automatically made distinct from the other applications'.
    pub fn add(mut self, spec: &BenchmarkSpec, threads: usize) -> Self {
        let mut app = spec.with_threads(threads);
        app.shared_region_id = self.apps.len() as u64 + 1;
        self.apps.push(app);
        self
    }

    /// Number of composed applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True if no applications were added.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Total cores required.
    pub fn total_threads(&self) -> usize {
        self.apps.iter().map(|a| a.threads.len()).sum()
    }

    /// The core groups, application by application, using global thread
    /// ids in composition order — the `groups` input of
    /// `icp_core::hierarchical::HierarchicalPolicy`.
    pub fn groups(&self) -> Vec<Vec<usize>> {
        let mut groups = Vec::with_capacity(self.apps.len());
        let mut next = 0usize;
        for a in &self.apps {
            groups.push((next..next + a.threads.len()).collect());
            next += a.threads.len();
        }
        groups
    }

    /// The composed applications.
    pub fn apps(&self) -> &[BenchmarkSpec] {
        &self.apps
    }

    /// Builds one stream per core. Applications occupy consecutive global
    /// thread ids; private regions are keyed by the global id and shared
    /// regions by application, so nothing aliases across applications.
    ///
    /// # Panics
    /// Panics if `cfg.cores` differs from [`Self::total_threads`].
    pub fn build_streams(
        &self,
        cfg: &SystemConfig,
        scale: WorkloadScale,
        seed: u64,
    ) -> Vec<Box<dyn AccessStream>> {
        assert_eq!(
            cfg.cores,
            self.total_threads(),
            "composition needs {} cores, system has {}",
            self.total_threads(),
            cfg.cores
        );
        let mut streams: Vec<Box<dyn AccessStream>> = Vec::with_capacity(cfg.cores);
        let mut global = 0usize;
        for (a, app) in self.apps.iter().enumerate() {
            app.validate();
            for ts in &app.threads {
                streams.push(Box::new(SyntheticStream::new(
                    app,
                    ts,
                    global,
                    cfg,
                    scale,
                    seed ^ ((a as u64) << 32),
                )));
                global += 1;
            }
        }
        streams
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn groups_are_consecutive_and_disjoint() {
        let w = MultiAppWorkload::new()
            .add(&suite::swim(), 2)
            .add(&suite::mg(), 2)
            .add(&suite::ft(), 4);
        assert_eq!(w.len(), 3);
        assert_eq!(w.total_threads(), 8);
        assert_eq!(w.groups(), vec![vec![0, 1], vec![2, 3], vec![4, 5, 6, 7]]);
    }

    #[test]
    fn shared_regions_are_distinct() {
        let w = MultiAppWorkload::new().add(&suite::swim(), 2).add(&suite::swim(), 2);
        assert_ne!(w.apps()[0].shared_region_id, w.apps()[1].shared_region_id);
    }

    #[test]
    fn builds_streams_for_matching_core_count() {
        let mut cfg = icp_cmp_sim::SystemConfig::scaled_down();
        cfg.cores = 4;
        let w = MultiAppWorkload::new().add(&suite::swim(), 2).add(&suite::mg(), 2);
        let streams = w.build_streams(&cfg, WorkloadScale::Test, 3);
        assert_eq!(streams.len(), 4);
    }

    #[test]
    #[should_panic(expected = "needs 6 cores")]
    fn core_count_mismatch_panics() {
        let mut cfg = icp_cmp_sim::SystemConfig::scaled_down();
        cfg.cores = 4;
        let w = MultiAppWorkload::new().add(&suite::swim(), 2).add(&suite::mg(), 4);
        let _ = w.build_streams(&cfg, WorkloadScale::Test, 3);
    }
}
