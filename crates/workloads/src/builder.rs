//! Fluent construction of custom workloads.
//!
//! [`BenchmarkSpec`] has public fields, but building one from scratch means
//! remembering invariants (quota units, phase ranges, section structure).
//! The builder makes the common paths concise and validates on `build`:
//!
//! ```
//! use icp_workloads::builder::WorkloadBuilder;
//!
//! let spec = WorkloadBuilder::new("my-app")
//!     .sections(8, 10_000)
//!     .shared_region(0.1, 0.8)
//!     .thread(|t| t.working_set(2.0).theta(0.7).memory_intensity(0.2))
//!     .thread(|t| t.working_set(0.1).theta(1.0).memory_intensity(0.25))
//!     .thread(|t| {
//!         t.working_set(3.0)
//!             .theta(0.4)
//!             .memory_intensity(0.12)
//!             .mlp(6.0)
//!     })
//!     .build();
//! assert_eq!(spec.threads.len(), 3);
//! spec.validate();
//! ```

use crate::spec::{BenchmarkSpec, PhaseSpec, ThreadSpec};

/// Builder for one thread's (single- or multi-phase) behaviour.
#[derive(Clone, Debug)]
pub struct ThreadBuilder {
    phases: Vec<PhaseSpec>,
    current: PhaseSpec,
}

impl ThreadBuilder {
    fn new() -> Self {
        ThreadBuilder {
            phases: Vec::new(),
            current: PhaseSpec::steady(0.25, 0.8, 0.25, 0.1),
        }
    }

    /// Working set as a fraction of L2 capacity (may exceed 1.0).
    pub fn working_set(mut self, ws_fraction: f64) -> Self {
        self.current.ws_fraction = ws_fraction;
        self
    }

    /// Zipf exponent of the reuse distribution.
    pub fn theta(mut self, theta: f64) -> Self {
        self.current.theta = theta;
        self
    }

    /// Fraction of instructions that touch memory.
    pub fn memory_intensity(mut self, mem_ratio: f64) -> Self {
        self.current.mem_ratio = mem_ratio;
        self
    }

    /// Fraction of accesses into the application's shared region.
    pub fn sharing(mut self, shared_fraction: f64) -> Self {
        self.current.shared_fraction = shared_fraction;
        self
    }

    /// Memory-level parallelism of misses (1.0 = serial).
    pub fn mlp(mut self, mlp: f64) -> Self {
        self.current.mlp = mlp;
        self
    }

    /// Fraction of memory accesses that are stores.
    pub fn writes(mut self, write_fraction: f64) -> Self {
        self.current.write_fraction = write_fraction;
        self
    }

    /// Closes the current phase at `instructions` (unscaled) length and
    /// starts describing the next one (which inherits the current
    /// parameters as defaults).
    pub fn then_after(mut self, instructions: u64) -> Self {
        let mut done = self.current;
        done.instructions = instructions;
        self.phases.push(done);
        self
    }

    fn finish(mut self) -> ThreadSpec {
        self.phases.push(self.current);
        ThreadSpec { phases: self.phases }
    }
}

/// Builder for a whole benchmark.
#[derive(Clone, Debug)]
pub struct WorkloadBuilder {
    name: &'static str,
    threads: Vec<ThreadSpec>,
    shared_ws_fraction: f64,
    shared_theta: f64,
    shared_region_id: u64,
    sections: u32,
    section_instructions: u64,
}

impl WorkloadBuilder {
    /// Starts a workload named `name` with the suite's default barrier
    /// structure (10 sections of 12 k instructions) and a 10 % shared
    /// region.
    pub fn new(name: &'static str) -> Self {
        WorkloadBuilder {
            name,
            threads: Vec::new(),
            shared_ws_fraction: 0.1,
            shared_theta: 0.8,
            shared_region_id: 0,
            sections: 10,
            section_instructions: 12_000,
        }
    }

    /// Sets the barrier structure: `count` parallel sections of
    /// `instructions` (unscaled) instructions per thread.
    pub fn sections(mut self, count: u32, instructions: u64) -> Self {
        self.sections = count;
        self.section_instructions = instructions;
        self
    }

    /// Sets the shared region's size (fraction of L2) and Zipf exponent.
    pub fn shared_region(mut self, ws_fraction: f64, theta: f64) -> Self {
        self.shared_ws_fraction = ws_fraction;
        self.shared_theta = theta;
        self
    }

    /// Distinguishes this application's shared data from co-scheduled
    /// applications' (hierarchical setting).
    pub fn shared_region_id(mut self, id: u64) -> Self {
        self.shared_region_id = id;
        self
    }

    /// Adds a thread described by `f`.
    pub fn thread<F: FnOnce(ThreadBuilder) -> ThreadBuilder>(mut self, f: F) -> Self {
        self.threads.push(f(ThreadBuilder::new()).finish());
        self
    }

    /// Finalises and validates the spec.
    ///
    /// # Panics
    /// Panics if no threads were added or any parameter is out of range
    /// (same contract as [`BenchmarkSpec::validate`]).
    pub fn build(self) -> BenchmarkSpec {
        let spec = BenchmarkSpec {
            name: self.name,
            threads: self.threads,
            shared_ws_fraction: self.shared_ws_fraction,
            shared_region_id: self.shared_region_id,
            shared_theta: self.shared_theta,
            sections: self.sections,
            section_instructions: self.section_instructions,
        };
        spec.validate();
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_single_phase_threads() {
        let spec = WorkloadBuilder::new("t")
            .thread(|t| t.working_set(1.5).theta(0.6).memory_intensity(0.2))
            .thread(|t| t.working_set(0.1))
            .build();
        assert_eq!(spec.threads.len(), 2);
        assert_eq!(spec.threads[0].phases.len(), 1);
        assert!((spec.threads[0].phases[0].ws_fraction - 1.5).abs() < 1e-12);
        // Defaults fill unset fields.
        assert!((spec.threads[1].phases[0].theta - 0.8).abs() < 1e-12);
    }

    #[test]
    fn builds_multi_phase_threads_with_inheritance() {
        let spec = WorkloadBuilder::new("p")
            .thread(|t| {
                t.working_set(0.5)
                    .memory_intensity(0.3)
                    .then_after(20_000)
                    .working_set(0.05) // phase 2 changes only the WS
            })
            .build();
        let phases = &spec.threads[0].phases;
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].instructions, 20_000);
        assert!((phases[0].ws_fraction - 0.5).abs() < 1e-12);
        assert!((phases[1].ws_fraction - 0.05).abs() < 1e-12);
        // Inherited from phase 1:
        assert!((phases[1].mem_ratio - 0.3).abs() < 1e-12);
    }

    #[test]
    fn section_and_shared_settings() {
        let spec = WorkloadBuilder::new("s")
            .sections(3, 5_000)
            .shared_region(0.2, 0.9)
            .shared_region_id(7)
            .thread(|t| t)
            .build();
        assert_eq!(spec.sections, 3);
        assert_eq!(spec.section_instructions, 5_000);
        assert_eq!(spec.shared_region_id, 7);
        assert!((spec.shared_ws_fraction - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "benchmark needs threads")]
    fn rejects_empty() {
        WorkloadBuilder::new("x").build();
    }

    #[test]
    #[should_panic(expected = "mem_ratio")]
    fn validates_parameters() {
        WorkloadBuilder::new("x")
            .thread(|t| t.memory_intensity(2.0))
            .build();
    }

    #[test]
    fn built_spec_drives_a_simulation() {
        use icp_cmp_sim::{Simulator, SystemConfig};
        let mut cfg = SystemConfig::scaled_down();
        cfg.cores = 2;
        let spec = WorkloadBuilder::new("sim")
            .sections(2, 2_000)
            .thread(|t| t.working_set(0.5))
            .thread(|t| t.working_set(0.1).mlp(4.0))
            .build();
        let streams = spec.build_streams(&cfg, crate::WorkloadScale::Test, 3);
        let mut sim = Simulator::new(cfg, streams);
        while let Some(r) = sim.run_interval() {
            if r.finished {
                break;
            }
        }
        assert!(sim.wall_cycles() > 0);
    }
}
