//! Monotone piecewise-cubic Hermite interpolation (PCHIP, Fritsch–Carlson).
//!
//! The paper notes that "the choice of the curve fitting algorithm used is
//! independent of the partitioning scheme, and therefore, any other algorithm
//! could also be used" (§VI-B). PCHIP is the natural alternative to the
//! cubic spline: it never overshoots, and when the observed CPI-vs-ways data
//! is monotone the fitted model is monotone too. The `ablation_model` bench
//! compares partitioner quality under spline / PCHIP / linear models.

use crate::spline::SplineError;

/// A shape-preserving piecewise-cubic Hermite interpolant.
#[derive(Clone, Debug)]
pub struct Pchip {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// First derivatives at the knots, limited per Fritsch–Carlson.
    d: Vec<f64>,
}

impl Pchip {
    /// Fits a PCHIP interpolant through `(xs[i], ys[i])`.
    ///
    /// Same input contract as [`crate::CubicSpline::fit`]: strictly
    /// increasing finite `xs`, at least two points.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, SplineError> {
        if xs.len() < 2 || xs.len() != ys.len() {
            return Err(SplineError::TooFewPoints);
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(SplineError::NonFinite);
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return Err(SplineError::NotStrictlyIncreasing);
        }
        let n = xs.len();
        // Secant slopes.
        let h: Vec<f64> = xs.windows(2).map(|w| w[1] - w[0]).collect();
        let delta: Vec<f64> = (0..n - 1).map(|i| (ys[i + 1] - ys[i]) / h[i]).collect();
        let mut d = vec![0.0; n];
        if n == 2 {
            d[0] = delta[0];
            d[1] = delta[0];
        } else {
            // Interior derivatives: weighted harmonic mean when the secants
            // agree in sign, zero otherwise (preserves local extrema).
            for i in 1..n - 1 {
                if delta[i - 1] * delta[i] > 0.0 {
                    let w1 = 2.0 * h[i] + h[i - 1];
                    let w2 = h[i] + 2.0 * h[i - 1];
                    d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
                }
            }
            d[0] = edge_derivative(h[0], h[1], delta[0], delta[1]);
            d[n - 1] = edge_derivative(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
        }
        Ok(Pchip { xs: xs.to_vec(), ys: ys.to_vec(), d })
    }

    /// Evaluates the interpolant at `x`, extrapolating linearly using the
    /// boundary derivative outside the knot range.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0] + self.d[0] * (x - self.xs[0]);
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1] + self.d[n - 1] * (x - self.xs[n - 1]);
        }
        let hi = self.xs.partition_point(|&k| k < x).max(1).min(n - 1);
        let lo = hi - 1;
        let h = self.xs[hi] - self.xs[lo];
        let t = (x - self.xs[lo]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.ys[lo] + h10 * h * self.d[lo] + h01 * self.ys[hi] + h11 * h * self.d[hi]
    }

    /// Number of knots.
    pub fn num_knots(&self) -> usize {
        self.xs.len()
    }
}

/// One-sided three-point derivative estimate for the boundary knots, limited
/// so monotonicity is preserved (Fritsch–Carlson end conditions).
fn edge_derivative(h0: f64, h1: f64, delta0: f64, delta1: f64) -> f64 {
    let d = ((2.0 * h0 + h1) * delta0 - h0 * delta1) / (h0 + h1);
    if d * delta0 <= 0.0 {
        0.0
    } else if delta0 * delta1 <= 0.0 && d.abs() > 3.0 * delta0.abs() {
        3.0 * delta0
    } else {
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let ys = [9.0, 6.0, 4.0, 3.5];
        let p = Pchip::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((p.eval(*x) - y).abs() < 1e-9);
        }
    }

    #[test]
    fn preserves_monotonicity() {
        // Strictly decreasing data => interpolant decreasing everywhere.
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0];
        let ys = [12.0, 8.0, 5.5, 4.2, 3.9, 3.85];
        let p = Pchip::fit(&xs, &ys).unwrap();
        let mut prev = p.eval(1.0);
        for i in 1..=310 {
            let x = 1.0 + i as f64 * 0.1;
            let y = p.eval(x);
            assert!(y <= prev + 1e-9, "non-monotone at x={x}: {y} > {prev}");
            prev = y;
        }
    }

    #[test]
    fn no_overshoot_between_knots() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 10.0, 10.5];
        let p = Pchip::fit(&xs, &ys).unwrap();
        for i in 0..=20 {
            let x = i as f64 / 10.0;
            let y = p.eval(x);
            assert!((-1e-9..=10.5 + 1e-9).contains(&y), "overshoot at {x}: {y}");
        }
    }

    #[test]
    fn two_points_is_a_line() {
        let p = Pchip::fit(&[2.0, 6.0], &[1.0, 9.0]).unwrap();
        assert!((p.eval(4.0) - 5.0).abs() < 1e-9);
        assert!((p.eval(0.0) - (-3.0)).abs() < 1e-9); // linear extrapolation
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Pchip::fit(&[1.0], &[1.0]).is_err());
        assert!(Pchip::fit(&[2.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(Pchip::fit(&[1.0, 2.0], &[f64::INFINITY, 2.0]).is_err());
    }

    #[test]
    fn flat_data_stays_flat() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [5.0, 5.0, 5.0, 5.0];
        let p = Pchip::fit(&xs, &ys).unwrap();
        for i in 0..=40 {
            let x = i as f64 / 10.0;
            assert!((p.eval(x) - 5.0).abs() < 1e-12);
        }
    }
}
