//! Numeric building blocks for the intra-application cache partitioning
//! (ICP) reproduction.
//!
//! Everything here is deterministic and dependency-free so that simulation
//! results are bit-reproducible across platforms and crate-version bumps:
//!
//! * [`rng`] — splitmix64 seeding and the xoshiro256++ generator,
//! * [`zipf`] — O(1) bounded Zipf sampling (the locality model used by the
//!   synthetic workloads),
//! * [`spline`] — natural cubic spline interpolation (the curve-fitting
//!   primitive of the paper's model-based partitioner, §VI-B),
//! * [`pchip`] — monotone piecewise-cubic Hermite interpolation (ablation
//!   alternative to the cubic spline),
//! * [`curve`] — monotone non-increasing fits over integer-indexed counts
//!   (the miss-vs-ways curves of the analytical sweep fast path),
//! * [`stats`] — Pearson correlation, linear regression and summary
//!   statistics (used to regenerate Figure 5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod curve;
pub mod fastmod;
pub mod histogram;
pub mod pchip;
pub mod rng;
pub mod spline;
pub mod stats;
pub mod zipf;

pub use curve::MonotoneDecreasing;
pub use fastmod::FastMod;
pub use histogram::Histogram;
pub use pchip::Pchip;
pub use rng::{BufferedRng, Xoshiro256};
pub use spline::CubicSpline;
pub use zipf::Zipf;
