//! Summary statistics, correlation and linear regression.
//!
//! Used by the experiment harness: Figure 5 of the paper reports the Pearson
//! correlation coefficient between per-interval CPI and L2 miss counts
//! (average ≈ 0.97 across the suite), and several figures normalise series
//! to their maximum.

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance. Returns 0.0 for slices with fewer than two elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Geometric mean of strictly positive values. Returns 0.0 if empty.
///
/// # Panics
/// Panics if any value is not strictly positive.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    assert!(xs.iter().all(|&x| x > 0.0), "geomean requires positive values");
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Pearson correlation coefficient between two equal-length series.
///
/// Returns `None` if the series differ in length, are shorter than two
/// elements, or either has zero variance (correlation undefined).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Result of an ordinary least-squares line fit `y = slope * x + intercept`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (r²).
    pub r2: f64,
}

/// Ordinary least-squares linear regression.
///
/// Returns `None` under the same conditions as [`pearson`] plus zero
/// x-variance.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let r = pearson(xs, ys).unwrap_or(0.0);
    Some(LinearFit { slope, intercept, r2: r * r })
}

/// Normalises a series to its maximum value (paper Figures 3 and 4 plot
/// values "normalized to the fastest thread" / "thread with the highest
/// number of misses"). Returns an empty vec for empty input; if the maximum
/// is zero every element maps to 0.
pub fn normalize_to_max(xs: &[f64]) -> Vec<f64> {
    let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if xs.is_empty() || max <= 0.0 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| x / max).collect()
}

/// Maximum of a slice (NaN-free input assumed). `None` when empty.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().cloned().reduce(f64::max)
}

/// Minimum of a slice (NaN-free input assumed). `None` when empty.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().cloned().reduce(f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_stddev() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((stddev(&xs) - 2.0).abs() < 1e-12);
        assert_eq!(variance(&[5.0]), 0.0);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn pearson_perfect_positive() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_negative() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &ys).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_undefined_cases() {
        assert!(pearson(&[1.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 2.0], &[1.0]).is_none());
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn pearson_noisy_linear_is_high() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(pearson(&xs, &ys).unwrap() > 0.99);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 1.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_to_max_basic() {
        let v = normalize_to_max(&[1.0, 2.0, 4.0]);
        assert_eq!(v, vec![0.25, 0.5, 1.0]);
        assert_eq!(normalize_to_max(&[]), Vec::<f64>::new());
        assert_eq!(normalize_to_max(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn min_max_basic() {
        assert_eq!(max(&[1.0, 5.0, 3.0]), Some(5.0));
        assert_eq!(min(&[1.0, 5.0, 3.0]), Some(1.0));
        assert_eq!(max(&[]), None);
    }
}
