//! Monotone non-increasing curve fits over integer-indexed counts.
//!
//! The analytical miss-curve fast path needs to evaluate a
//! misses-vs-ways curve at *fractional* allocations (the shared-cache
//! occupancy model assigns non-integer effective ways). The curve is known
//! exactly at every integer point — the UMON way-hit histogram gives it by
//! the LRU inclusion property — so this is interpolation, not regression:
//! a shape-preserving PCHIP through the points, with the data pre-clamped
//! to non-increasing (a miss curve can never rise with more capacity) and
//! evaluations clamped to the physically meaningful range.

use crate::pchip::Pchip;
use crate::spline::SplineError;

/// A monotone non-increasing interpolant through `(i, ys[i])`, `i = 0..n`.
#[derive(Clone, Debug)]
pub struct MonotoneDecreasing {
    pchip: Pchip,
    floor: f64,
    ceil: f64,
}

impl MonotoneDecreasing {
    /// Fits through `ys` at integer abscissae `0, 1, ..., ys.len() - 1`.
    ///
    /// Input values are first clamped to a running minimum, so weakly
    /// rising stretches (measurement noise; impossible for true miss
    /// curves) are flattened rather than interpolated through. Needs at
    /// least two finite points.
    pub fn fit(ys: &[f64]) -> Result<Self, SplineError> {
        if ys.len() < 2 {
            return Err(SplineError::TooFewPoints);
        }
        if ys.iter().any(|v| !v.is_finite()) {
            return Err(SplineError::NonFinite);
        }
        let mut clamped = Vec::with_capacity(ys.len());
        let mut run_min = f64::INFINITY;
        for &y in ys {
            run_min = run_min.min(y.max(0.0));
            clamped.push(run_min);
        }
        let xs: Vec<f64> = (0..clamped.len()).map(|i| i as f64).collect();
        let pchip = Pchip::fit(&xs, &clamped)?;
        let (floor, ceil) = (clamped[clamped.len() - 1], clamped[0]);
        Ok(MonotoneDecreasing { pchip, floor, ceil })
    }

    /// Evaluates at `x`, clamped into `[last, first]` of the fitted data —
    /// extrapolation beyond the knot range holds the boundary value, since
    /// a miss count below the full-capacity level (or above the
    /// zero-capacity level) is physically meaningless.
    pub fn eval(&self, x: f64) -> f64 {
        self.pchip.eval(x).clamp(self.floor, self.ceil)
    }

    /// Number of fitted points.
    pub fn num_knots(&self) -> usize {
        self.pchip.num_knots()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_decreasing_counts_exactly() {
        let ys = [100.0, 60.0, 35.0, 20.0, 12.0, 12.0, 12.0];
        let c = MonotoneDecreasing::fit(&ys).unwrap();
        for (i, y) in ys.iter().enumerate() {
            assert!((c.eval(i as f64) - y).abs() < 1e-9, "knot {i}");
        }
        assert_eq!(c.num_knots(), 7);
    }

    #[test]
    fn stays_monotone_between_knots() {
        let ys = [100.0, 60.0, 35.0, 20.0, 12.0, 11.0];
        let c = MonotoneDecreasing::fit(&ys).unwrap();
        let mut prev = c.eval(0.0);
        for i in 1..=50 {
            let y = c.eval(i as f64 * 0.1);
            assert!(y <= prev + 1e-9, "rises at {i}");
            prev = y;
        }
    }

    #[test]
    fn rising_noise_is_flattened_not_followed() {
        // A true miss curve cannot rise; a noisy sample that does gets
        // clamped to the running minimum.
        let c = MonotoneDecreasing::fit(&[50.0, 30.0, 42.0, 10.0]).unwrap();
        assert!((c.eval(2.0) - 30.0).abs() < 1e-9);
        let mut prev = c.eval(0.0);
        for i in 1..=30 {
            let y = c.eval(i as f64 * 0.1);
            assert!(y <= prev + 1e-9);
            prev = y;
        }
    }

    #[test]
    fn extrapolation_holds_boundary_values() {
        let c = MonotoneDecreasing::fit(&[80.0, 40.0, 25.0]).unwrap();
        assert!((c.eval(-3.0) - 80.0).abs() < 1e-12);
        assert!((c.eval(10.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(MonotoneDecreasing::fit(&[1.0]).is_err());
        assert!(MonotoneDecreasing::fit(&[f64::NAN, 1.0]).is_err());
    }
}
