//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible: the same seed has to generate the
//! same access stream on every platform and with every dependency version.
//! We therefore hand-roll xoshiro256++ (Blackman & Vigna) seeded through
//! splitmix64 instead of depending on an external RNG crate.

/// Advances a splitmix64 state and returns the next output.
///
/// Used to expand a single `u64` seed into the 256-bit xoshiro state, per the
/// xoshiro authors' recommendation.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator: fast, high-quality, 256-bit state.
///
/// # Examples
///
/// ```
/// use icp_numeric::Xoshiro256;
///
/// let mut a = Xoshiro256::seed_from_u64(7);
/// let mut b = Xoshiro256::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // fully deterministic
/// assert!(a.next_bounded(10) < 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    ///
    /// Any seed (including 0) produces a valid non-degenerate state.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256 { s }
    }

    /// Returns the next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift with rejection to avoid modulo bias.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded requires bound > 0");
        // Lemire's nearly-divisionless method.
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `out` with the same sequence repeated [`Self::next_u64`] calls
    /// would produce, keeping the 256-bit state in registers across the
    /// whole fill instead of re-loading it per call — the bulk primitive
    /// behind batched stream generation.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let [mut s0, mut s1, mut s2, mut s3] = self.s;
        for slot in out.iter_mut() {
            *slot = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            s2 ^= s0;
            s3 ^= s1;
            s1 ^= s2;
            s0 ^= s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
        }
        self.s = [s0, s1, s2, s3];
    }

    /// Creates a statistically independent generator for a sub-stream.
    ///
    /// Equivalent to xoshiro's `jump`-style stream splitting, implemented by
    /// reseeding through splitmix64 with a mixed label so that
    /// `fork(a) != fork(b)` for `a != b`.
    pub fn fork(&mut self, label: u64) -> Self {
        let base = self.next_u64() ^ label.wrapping_mul(0xA24B_AED4_963E_E407);
        Xoshiro256::seed_from_u64(base)
    }
}

/// Raw words buffered per [`BufferedRng`] refill. At the generator's ~4
/// draws per event this covers ~64 events per `fill_u64` — long enough to
/// amortise the state reload, small enough to stay in L1.
const RNG_BATCH: usize = 256;

/// A [`Xoshiro256`] drained through a scratch buffer filled in bulk.
///
/// [`Xoshiro256::fill_u64`] produces exactly the `next_u64` sequence, so
/// every derived draw (`next_f64`, `next_bounded`, `next_bool`) replicates
/// the unbuffered generator's arithmetic on buffered words and the two are
/// interchangeable mid-stream *bit for bit* — a consumer may switch between
/// a `BufferedRng` and its inner generator's draw sequence at any point.
/// This is what lets the columnar workload generator batch its RNG work
/// while staying byte-identical to the scalar event loop.
///
/// # Examples
///
/// ```
/// use icp_numeric::{BufferedRng, Xoshiro256};
///
/// let mut plain = Xoshiro256::seed_from_u64(7);
/// let mut buffered = BufferedRng::new(Xoshiro256::seed_from_u64(7));
/// for _ in 0..1000 {
///     assert_eq!(buffered.next_u64(), plain.next_u64());
/// }
/// ```
#[derive(Clone, Debug)]
pub struct BufferedRng {
    rng: Xoshiro256,
    buf: [u64; RNG_BATCH],
    /// Next unconsumed slot; `pos == RNG_BATCH` means empty.
    pos: usize,
}

impl BufferedRng {
    /// Wraps `rng`; no words are drawn until the first use.
    pub fn new(rng: Xoshiro256) -> Self {
        BufferedRng { rng, buf: [0; RNG_BATCH], pos: RNG_BATCH }
    }

    /// Returns the next 64 uniformly random bits (refilling in bulk).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        if self.pos == RNG_BATCH {
            self.rng.fill_u64(&mut self.buf);
            self.pos = 0;
        }
        let w = self.buf[self.pos];
        self.pos += 1;
        w
    }

    /// Returns a uniform `f64` in `[0, 1)` — [`Xoshiro256::next_f64`]'s
    /// exact arithmetic on a buffered word.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, bound)` —
    /// [`Xoshiro256::next_bounded`]'s exact Lemire multiply-shift,
    /// rejection loop included, on buffered words.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_bounded(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_bounded requires bound > 0");
        let mut m = (self.next_u64() as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                m = (self.next_u64() as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`) —
    /// [`Xoshiro256::next_bool`]'s comparison on a buffered word. Note it
    /// always consumes a word, exactly like the unbuffered method, even
    /// for `p == 0`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the public-domain reference code.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut s), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(splitmix64(&mut s), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(42);
        let mut b = Xoshiro256::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bounded_respects_bound() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for bound in [1u64, 2, 3, 7, 64, 1000] {
            for _ in 0..1000 {
                assert!(r.next_bounded(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut r = Xoshiro256::seed_from_u64(11);
        let bound = 10u64;
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.next_bounded(bound) as usize] += 1;
        }
        let expected = n as f64 / bound as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {i} count {c} deviates {dev}");
        }
    }

    #[test]
    #[should_panic(expected = "bound > 0")]
    fn bounded_zero_panics() {
        Xoshiro256::seed_from_u64(0).next_bounded(0);
    }

    #[test]
    fn fill_u64_matches_next_u64() {
        let mut a = Xoshiro256::seed_from_u64(77);
        let mut b = a.clone();
        let mut buf = [0u64; 257];
        a.fill_u64(&mut buf);
        for (i, &x) in buf.iter().enumerate() {
            assert_eq!(x, b.next_u64(), "index {i}");
        }
        // States stay in lockstep afterwards, and an empty fill is a no-op.
        a.fill_u64(&mut []);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Xoshiro256::seed_from_u64(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same <= 1);
    }

    #[test]
    fn buffered_rng_matches_plain_draw_for_draw() {
        // Interleave all four draw kinds in a fixed pattern across several
        // buffer refills: every value must equal the unbuffered generator's.
        let mut plain = Xoshiro256::seed_from_u64(1234);
        let mut buffered = BufferedRng::new(Xoshiro256::seed_from_u64(1234));
        for i in 0..5000u64 {
            match i % 4 {
                0 => assert_eq!(buffered.next_u64(), plain.next_u64(), "draw {i}"),
                1 => assert_eq!(
                    buffered.next_f64().to_bits(),
                    plain.next_f64().to_bits(),
                    "draw {i}"
                ),
                2 => {
                    let bound = (i % 97) + 1;
                    assert_eq!(buffered.next_bounded(bound), plain.next_bounded(bound), "draw {i}");
                }
                _ => assert_eq!(buffered.next_bool(0.3), plain.next_bool(0.3), "draw {i}"),
            }
        }
    }

    #[test]
    fn buffered_rng_bool_consumes_draw_even_for_p_zero() {
        let mut plain = Xoshiro256::seed_from_u64(8);
        let mut buffered = BufferedRng::new(Xoshiro256::seed_from_u64(8));
        assert!(!buffered.next_bool(0.0));
        let _ = plain.next_u64();
        assert_eq!(buffered.next_u64(), plain.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound > 0")]
    fn buffered_bounded_zero_panics() {
        BufferedRng::new(Xoshiro256::seed_from_u64(0)).next_bounded(0);
    }

    #[test]
    fn next_bool_extremes() {
        let mut r = Xoshiro256::seed_from_u64(100);
        for _ in 0..100 {
            assert!(!r.next_bool(0.0));
            assert!(r.next_bool(1.0));
        }
    }
}
