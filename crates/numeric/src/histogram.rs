//! Fixed-bin histograms and percentile estimation.
//!
//! Used by the experiment harness to summarise per-interval distributions
//! (e.g. slack time across intervals) beyond means: the paper reasons about
//! the *slowest* thread, so tails matter.

/// A histogram over `[lo, hi)` with uniformly sized bins; values outside
/// the range are clamped into the edge bins.
///
/// # Examples
///
/// ```
/// use icp_numeric::Histogram;
///
/// let mut h = Histogram::new(0.0, 20.0, 20);
/// for cpi in [3.0, 3.5, 4.0, 11.5] {
///     h.record(cpi);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.quantile(0.95).unwrap() > 10.0);
/// ```
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `bins == 0` or the range is empty/non-finite.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad range");
        Histogram { lo, hi, bins: vec![0; bins], count: 0 }
    }

    /// Records one observation (clamped into range; NaN ignored).
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        let n = self.bins.len();
        let frac = (v - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[idx] += 1;
        self.count += 1;
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate p-quantile (`0.0..=1.0`) by linear interpolation within
    /// the containing bin. `None` when empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile needs p in [0,1]");
        if self.count == 0 {
            return None;
        }
        let target = p * self.count as f64;
        let mut acc = 0u64;
        let bin_width = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            let next = acc + c;
            if (next as f64) >= target && c > 0 {
                let within = (target - acc as f64) / c as f64;
                return Some(self.lo + bin_width * (i as f64 + within.clamp(0.0, 1.0)));
            }
            acc = next;
        }
        Some(self.hi)
    }

    /// A compact sparkline of the distribution (one char per bin).
    pub fn sparkline(&self) -> String {
        const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        self.bins
            .iter()
            .map(|&c| {
                if c == 0 {
                    ' '
                } else {
                    LEVELS[((c * (LEVELS.len() as u64 - 1)).div_ceil(max)) as usize]
                }
            })
            .collect()
    }
}

/// Exact percentile of a sample (interpolated, like numpy's default).
/// Returns `None` for an empty slice.
///
/// # Panics
/// Panics if `p` is outside `[0, 1]` or data contains NaN.
pub fn percentile(data: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&p), "percentile needs p in [0,1]");
    if data.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = data.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let rank = p * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.record(i as f64 + 0.5);
        }
        assert_eq!(h.count(), 10);
        assert!(h.bins().iter().all(|&c| c == 1));
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(99.0);
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 2);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[3], 1);
    }

    #[test]
    fn quantiles_of_uniform_fill() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let q50 = h.quantile(0.5).unwrap();
        assert!((q50 - 50.0).abs() < 2.0, "{q50}");
        let q90 = h.quantile(0.9).unwrap();
        assert!((q90 - 90.0).abs() < 2.0, "{q90}");
        assert!(h.quantile(0.0).unwrap() <= h.quantile(1.0).unwrap());
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn sparkline_shape() {
        let mut h = Histogram::new(0.0, 3.0, 3);
        h.record(0.5);
        h.record(1.5);
        h.record(1.6);
        let s = h.sparkline();
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().nth(2), Some(' ')); // empty bin
    }

    #[test]
    fn percentile_exact() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 1.0), Some(4.0));
        assert!((percentile(&data, 0.5).unwrap() - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let data = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&data, 0.5), Some(5.0));
    }
}
