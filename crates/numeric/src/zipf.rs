//! Bounded Zipf-distributed sampling.
//!
//! The synthetic workloads model temporal locality by drawing cache-line
//! ranks from a Zipf distribution over the thread's working set: a small
//! number of hot lines absorb most accesses while the tail provides capacity
//! pressure. Sweeping the exponent moves a thread smoothly between
//! cache-friendly (high skew) and streaming-like (low skew) behaviour, which
//! is exactly the heterogeneity the paper observes across threads (§IV-A).
//!
//! The sampler is the classic O(1) rejection-free approximation of Gray et
//! al. ("Quickly generating billion-record synthetic databases", SIGMOD'94):
//! an O(n) zeta precomputation at construction, then constant work per
//! sample.

use crate::rng::Xoshiro256;

/// A bounded Zipf distribution over ranks `0..n` with exponent `theta > 0`.
///
/// Rank 0 is the most popular item. `theta` values near 0 approach uniform;
/// values near or above 1 are heavily skewed.
///
/// # Examples
///
/// ```
/// use icp_numeric::{Xoshiro256, Zipf};
///
/// let zipf = Zipf::new(1000, 0.8);
/// let mut rng = Xoshiro256::seed_from_u64(42);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Clone, Debug)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

/// Computes the generalized harmonic number `H_{n,theta} = sum_{i=1..n} i^-theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with exponent `theta`.
    ///
    /// Construction is O(n) (zeta precomputation); sampling is O(1).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta <= 0` or `theta` is not finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf requires n > 0");
        assert!(
            theta > 0.0 && theta.is_finite(),
            "Zipf requires finite theta > 0, got {theta}"
        );
        // Gray's closed-form inversion is singular at theta == 1; nudge.
        let theta = if (theta - 1.0).abs() < 1e-9 { 1.0 + 1e-9 } else { theta };
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipf { n, theta, alpha, zetan, eta }
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent (possibly nudged away from exactly 1).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `0..n`; rank 0 is the hottest item.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        if self.n == 1 {
            return 0;
        }
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        // Floating-point slop can push k to n; clamp into range.
        k.min(self.n - 1)
    }

    /// Analytic probability of rank `k` (0-based), for tests and model checks.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k < self.n);
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts(n: u64, theta: f64, draws: usize, seed: u64) -> Vec<u64> {
        let z = Zipf::new(n, theta);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.8);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..100_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 0.9);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let counts = sample_counts(50, 0.9, 200_000, 3);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn matches_pmf_for_head_ranks() {
        let n = 200u64;
        let theta = 0.99;
        let draws = 500_000usize;
        let counts = sample_counts(n, theta, draws, 4);
        let z = Zipf::new(n, theta);
        // Gray's sampler is exact for ranks 0 and 1 by construction; the
        // continuous inversion used for the tail is only approximate, so
        // later ranks get a loose tolerance.
        for (k, tol) in [(0u64, 0.05), (1, 0.05), (2, 0.3), (3, 0.3), (4, 0.3)] {
            let expected = z.pmf(k) * draws as f64;
            let got = counts[k as usize] as f64;
            let dev = (got - expected).abs() / expected;
            assert!(dev < tol, "rank {k}: expected {expected}, got {got}");
        }
    }

    #[test]
    fn low_theta_approaches_uniform() {
        let n = 20u64;
        let counts = sample_counts(n, 0.05, 200_000, 5);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        // With theta ~ 0 the ratio between hottest and coldest is small.
        assert!(max / min < 1.6, "max {max} min {min}");
    }

    #[test]
    fn high_theta_is_skewed() {
        let counts = sample_counts(1000, 1.2, 200_000, 6);
        let head: u64 = counts[..10].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(head as f64 / total as f64 > 0.5);
    }

    #[test]
    fn theta_one_is_handled() {
        let z = Zipf::new(64, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 64);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.7);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_items_panics() {
        Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta > 0")]
    fn bad_theta_panics() {
        Zipf::new(10, 0.0);
    }
}
