//! Bounded Zipf-distributed sampling.
//!
//! The synthetic workloads model temporal locality by drawing cache-line
//! ranks from a Zipf distribution over the thread's working set: a small
//! number of hot lines absorb most accesses while the tail provides capacity
//! pressure. Sweeping the exponent moves a thread smoothly between
//! cache-friendly (high skew) and streaming-like (low skew) behaviour, which
//! is exactly the heterogeneity the paper observes across threads (§IV-A).
//!
//! The sampler is the classic O(1) rejection-free approximation of Gray et
//! al. ("Quickly generating billion-record synthetic databases", SIGMOD'94):
//! an O(n) zeta precomputation at construction, then constant work per
//! sample.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::rng::Xoshiro256;

/// A bounded Zipf distribution over ranks `0..n` with exponent `theta > 0`.
///
/// Rank 0 is the most popular item. `theta` values near 0 approach uniform;
/// values near or above 1 are heavily skewed.
///
/// # Examples
///
/// ```
/// use icp_numeric::{Xoshiro256, Zipf};
///
/// let zipf = Zipf::new(1000, 0.8);
/// let mut rng = Xoshiro256::seed_from_u64(42);
/// let rank = zipf.sample(&mut rng);
/// assert!(rank < 1000);
/// ```
#[derive(Clone)]
pub struct Zipf {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    /// `1 + 0.5^theta`, the exact rank-1 threshold [`Self::rank_for`]
    /// compares against. Precomputed because `powf` costs more than the
    /// rest of a sample combined.
    rank1_bound: f64,
    /// Slice-indexed rank shortcut (see [`build_rank_table`]): entry `i`
    /// holds the rank every `u` in `[i, i+1) / table.len()` maps to, or
    /// `RANK_TABLE_SENTINEL` when the slice straddles a rank boundary and
    /// [`Self::rank_for`] must run the full inversion. `None` for
    /// distributions outside the table's size gate.
    table: Option<Arc<Vec<u16>>>,
    /// `table.len()` as f64 (0.0 when `table` is `None`): the slice-index
    /// scale factor, kept pre-converted off the sampling path.
    table_scale: f64,
}

impl std::fmt::Debug for Zipf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Zipf")
            .field("n", &self.n)
            .field("theta", &self.theta)
            .field("alpha", &self.alpha)
            .field("zetan", &self.zetan)
            .field("eta", &self.eta)
            .field("rank1_bound", &self.rank1_bound)
            .field("table", &self.table.as_ref().map(|t| t.len()))
            .finish()
    }
}

/// Computes the generalized harmonic number `H_{n,theta} = sum_{i=1..n} i^-theta`.
fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// Below this size the O(n) zeta sum is cheaper than a cache lock.
const ZETA_CACHE_MIN_N: u64 = 512;

/// `zeta(n, theta)`, memoised across identical `(n, theta)` pairs.
///
/// Suite construction and multi-seed robustness runs build the same `Zipf`
/// per phase per thread over and over; the zeta table is the O(n) part, and
/// it depends only on `(n, theta)` — never on the seed — so the sum is
/// computed once per distinct pair for the life of the process. The f64
/// summation order is fixed, so a cached value is bit-identical to a fresh
/// one and memoisation cannot change any generated stream.
fn zeta_cached(n: u64, theta: f64) -> f64 {
    if n < ZETA_CACHE_MIN_N {
        return zeta(n, theta);
    }
    static CACHE: OnceLock<Mutex<BTreeMap<(u64, u64), f64>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (n, theta.to_bits());
    if let Some(&hit) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return hit;
    }
    // Summed outside the lock: a racing thread at worst recomputes the
    // same (deterministic) value and the insert is idempotent.
    let value = zeta(n, theta);
    cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, value);
    value
}

/// Fewest equal slices a rank table divides `[0, 1)` into.
const RANK_TABLE_MIN_SLICES: usize = 1 << 16;

/// Most slices a rank table may use (a 512 KiB table of `u16` entries).
const RANK_TABLE_MAX_SLICES: usize = 1 << 18;

/// Number of equal slices the rank table for an `n`-item distribution
/// divides `[0, 1)` into. Always a power of two so `u * slices` only
/// rescales the exponent — the slice index of any `u` is exact, with no
/// rounding to disagree with table construction. Scales with `n` (a
/// distribution has `n - 1` rank boundaries, and every slice containing
/// one falls back to the full inversion) up to a cache-friendly cap.
fn table_slices(n: u64) -> usize {
    (n.saturating_mul(8).min(RANK_TABLE_MAX_SLICES as u64) as usize)
        .next_power_of_two()
        .clamp(RANK_TABLE_MIN_SLICES, RANK_TABLE_MAX_SLICES)
}

/// Table entry for "slice not provably constant — run the full inversion".
const RANK_TABLE_SENTINEL: u16 = u16::MAX;

/// Below this `n` the table's construction probes (two per slice) cost
/// more than they will ever save (tiny distributions are head-dominated
/// and cheap).
const RANK_TABLE_MIN_N: u64 = 512;

/// Ranks must fit `u16` with the sentinel reserved.
const RANK_TABLE_MAX_N: u64 = RANK_TABLE_SENTINEL as u64 - 1;

/// One full-inversion probe: the branch taken (0/1 = head shortcuts, 2 =
/// continuous formula), the rank, and whether the continuous value sits
/// far enough from both enclosing integers that bounded `powf` rounding
/// error cannot move the floor (head branches involve one exactly-rounded
/// multiply, so they are always safe).
fn probe(z: &Zipf, u: f64) -> (u8, u64, bool) {
    let uz = u * z.zetan;
    if uz < 1.0 {
        return (0, 0, true);
    }
    if uz < z.rank1_bound {
        return (1, 1, true);
    }
    let y = z.n as f64 * (z.eta * u - z.eta + 1.0).powf(z.alpha);
    let k = (y as u64).min(z.n - 1);
    // Relative margin of 1e-12 dwarfs libm pow's ~0.5 ulp (~1e-16
    // relative) error while rejecting only a ~2e-12 sliver of u-mass.
    let eps = y.abs() * 1e-12 + 1e-12;
    let floor = y.floor();
    let safe = y < z.n as f64 && y - floor > eps && (floor + 1.0) - y > eps;
    (2, k, safe)
}

/// Builds the slice-indexed rank shortcut for [`Zipf::rank_for`], with
/// [`table_slices`]`(z.n)` slices.
///
/// Entry `i` covers every `f64` in `[i, i+1) / slices` and is filled only
/// when the whole slice provably maps to one rank:
///
/// * branch selection is monotone in `u` (`u * zetan` is one correctly-
///   rounded multiply against fixed thresholds), so equal branches at the
///   slice's first and last representable value pin the branch for the
///   interior;
/// * head branches (ranks 0/1) then yield the endpoint rank everywhere;
/// * the continuous branch yields the endpoint floor everywhere when both
///   endpoint values keep a margin to the enclosing integers that bounds
///   the interior evaluations too — the true map is monotone and libm
///   error is orders of magnitude below the margin.
///
/// Anything else gets the sentinel and falls back to the full inversion,
/// so the table can only ever reproduce `rank_for`'s exact output.
fn build_rank_table(z: &Zipf) -> Vec<u16> {
    let slices = table_slices(z.n);
    let mut table = vec![RANK_TABLE_SENTINEL; slices];
    for (i, entry) in table.iter_mut().enumerate() {
        // Slice boundaries i/slices and (i+1)/slices are exact (power-of-
        // two divisor): the slice's first f64 is the lower boundary itself
        // and its last is the value just below the upper boundary.
        let u_lo = i as f64 / slices as f64;
        let bound = (i + 1) as f64 / slices as f64;
        let u_hi = f64::from_bits(bound.to_bits() - 1);
        let (branch_lo, rank_lo, safe_lo) = probe(z, u_lo);
        let (branch_hi, rank_hi, safe_hi) = probe(z, u_hi);
        if branch_lo == branch_hi && rank_lo == rank_hi && safe_lo && safe_hi {
            *entry = rank_lo as u16;
        }
    }
    table
}

/// The rank table for `z`, memoised like [`zeta_cached`]: it depends only
/// on `(n, theta)`, and suite construction rebuilds identical
/// distributions per phase per thread per seed.
fn rank_table_cached(z: &Zipf) -> Option<Arc<Vec<u16>>> {
    if !(RANK_TABLE_MIN_N..=RANK_TABLE_MAX_N).contains(&z.n) {
        return None;
    }
    type RankTableCache = Mutex<BTreeMap<(u64, u64), Arc<Vec<u16>>>>;
    static CACHE: OnceLock<RankTableCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    let key = (z.n, z.theta.to_bits());
    if let Some(hit) = cache.lock().unwrap_or_else(|e| e.into_inner()).get(&key) {
        return Some(Arc::clone(hit));
    }
    // Built outside the lock: a racing thread at worst rebuilds the same
    // (deterministic) table and the insert is idempotent.
    let table = Arc::new(build_rank_table(z));
    cache
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .insert(key, Arc::clone(&table));
    Some(table)
}

impl Zipf {
    /// Creates a Zipf distribution over `n` items with exponent `theta`.
    ///
    /// Construction is O(n) (zeta precomputation); sampling is O(1).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta <= 0` or `theta` is not finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "Zipf requires n > 0");
        assert!(
            theta > 0.0 && theta.is_finite(),
            "Zipf requires finite theta > 0, got {theta}"
        );
        // Gray's closed-form inversion is singular at theta == 1; nudge.
        let theta = if (theta - 1.0).abs() < 1e-9 { 1.0 + 1e-9 } else { theta };
        let zetan = zeta_cached(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        let rank1_bound = 1.0 + 0.5f64.powf(theta);
        let mut z =
            Zipf { n, theta, alpha, zetan, eta, rank1_bound, table: None, table_scale: 0.0 };
        z.table = rank_table_cached(&z);
        z.table_scale = z.table.as_ref().map_or(0.0, |t| t.len() as f64);
        z
    }

    /// Number of items.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent (possibly nudged away from exactly 1).
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Draws a rank in `0..n`; rank 0 is the hottest item.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        if self.n == 1 {
            return 0;
        }
        self.rank_for(rng.next_f64())
    }

    /// Maps one uniform draw `u` in `[0, 1)` to a rank in `0..n` — the pure
    /// inversion behind [`Self::sample`], split out so batched generators
    /// can feed pre-drawn uniforms (`Xoshiro256::fill_u64` scratch) through
    /// the identical arithmetic.
    ///
    /// Unlike `sample`, this always consumes its draw: callers replicating
    /// `sample`'s RNG sequence must keep its `n == 1` early-out (which
    /// draws nothing) on their side.
    #[inline]
    pub fn rank_for(&self, u: f64) -> u64 {
        // Slice shortcut: `u * slices` is a pure exponent rescale, so the
        // index is the exact slice [`build_rank_table`] filled; any
        // non-sentinel entry is that slice's proven-constant rank.
        if let Some(table) = &self.table {
            let k = table[(u * self.table_scale) as usize];
            if k != RANK_TABLE_SENTINEL {
                return k as u64;
            }
        }
        self.rank_for_uncached(u)
    }

    /// The full inversion — [`Self::rank_for`] without the table shortcut.
    #[inline]
    fn rank_for_uncached(&self, u: f64) -> u64 {
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < self.rank1_bound {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        // Floating-point slop can push k to n; clamp into range.
        k.min(self.n - 1)
    }

    /// Analytic probability of rank `k` (0-based), for tests and model checks.
    pub fn pmf(&self, k: u64) -> f64 {
        assert!(k < self.n);
        1.0 / ((k + 1) as f64).powf(self.theta) / self.zetan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counts(n: u64, theta: f64, draws: usize, seed: u64) -> Vec<u64> {
        let z = Zipf::new(n, theta);
        let mut rng = Xoshiro256::seed_from_u64(seed);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..draws {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 0.8);
        let mut rng = Xoshiro256::seed_from_u64(1);
        for _ in 0..100_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn single_item_always_zero() {
        let z = Zipf::new(1, 0.9);
        let mut rng = Xoshiro256::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let counts = sample_counts(50, 0.9, 200_000, 3);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(counts[10] > counts[40]);
    }

    #[test]
    fn matches_pmf_for_head_ranks() {
        let n = 200u64;
        let theta = 0.99;
        let draws = 500_000usize;
        let counts = sample_counts(n, theta, draws, 4);
        let z = Zipf::new(n, theta);
        // Gray's sampler is exact for ranks 0 and 1 by construction; the
        // continuous inversion used for the tail is only approximate, so
        // later ranks get a loose tolerance.
        for (k, tol) in [(0u64, 0.05), (1, 0.05), (2, 0.3), (3, 0.3), (4, 0.3)] {
            let expected = z.pmf(k) * draws as f64;
            let got = counts[k as usize] as f64;
            let dev = (got - expected).abs() / expected;
            assert!(dev < tol, "rank {k}: expected {expected}, got {got}");
        }
    }

    #[test]
    fn low_theta_approaches_uniform() {
        let n = 20u64;
        let counts = sample_counts(n, 0.05, 200_000, 5);
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        // With theta ~ 0 the ratio between hottest and coldest is small.
        assert!(max / min < 1.6, "max {max} min {min}");
    }

    #[test]
    fn high_theta_is_skewed() {
        let counts = sample_counts(1000, 1.2, 200_000, 6);
        let head: u64 = counts[..10].iter().sum();
        let total: u64 = counts.iter().sum();
        assert!(head as f64 / total as f64 > 0.5);
    }

    #[test]
    fn theta_one_is_handled() {
        let z = Zipf::new(64, 1.0);
        let mut rng = Xoshiro256::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 64);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        let z = Zipf::new(500, 0.7);
        let total: f64 = (0..500).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rank_for_matches_sample() {
        let z = Zipf::new(777, 0.9);
        let mut a = Xoshiro256::seed_from_u64(21);
        let mut b = Xoshiro256::seed_from_u64(21);
        for _ in 0..50_000 {
            assert_eq!(z.sample(&mut a), z.rank_for(b.next_f64()));
        }
    }

    #[test]
    fn cached_zeta_is_bit_identical_to_fresh() {
        // Two constructions with identical parameters (the second hits the
        // cache above ZETA_CACHE_MIN_N) must agree bit-for-bit with the
        // direct sum, and produce identical samples.
        for n in [2u64, 100, ZETA_CACHE_MIN_N, 10_000] {
            for theta in [0.3, 0.75, 1.0, 1.2] {
                let a = Zipf::new(n, theta);
                let b = Zipf::new(n, theta);
                assert_eq!(a.zetan.to_bits(), b.zetan.to_bits(), "n={n} theta={theta}");
                assert_eq!(a.zetan.to_bits(), zeta(a.theta(), n).to_bits(), "n={n} theta={theta}");
                let mut ra = Xoshiro256::seed_from_u64(n ^ theta.to_bits());
                let mut rb = ra.clone();
                for _ in 0..200 {
                    assert_eq!(a.sample(&mut ra), b.sample(&mut rb));
                }
            }
        }
    }

    #[test]
    fn rank_table_matches_full_inversion() {
        for (n, theta) in [(512u64, 0.5), (8192, 0.8), (3000, 1.0), (40000, 1.2)] {
            let z = Zipf::new(n, theta);
            assert!(z.table.is_some(), "n={n} theta={theta}: expected a table");
            // Dense random coverage.
            let mut rng = Xoshiro256::seed_from_u64(n ^ theta.to_bits());
            for _ in 0..200_000 {
                let u = rng.next_f64();
                assert_eq!(z.rank_for(u), z.rank_for_uncached(u), "n={n} theta={theta} u={u}");
            }
            // Adversarial: slice boundaries and their f64 neighbours, where
            // the table hand-off to the fallback happens.
            let slices = table_slices(n);
            assert_eq!(z.table.as_ref().map(|t| t.len()), Some(slices));
            for i in (0..slices).step_by(17) {
                let b = i as f64 / slices as f64;
                let candidates = [
                    b,
                    f64::from_bits(b.to_bits() + 1),
                    f64::from_bits(b.to_bits().wrapping_sub(1)),
                ];
                for u in candidates {
                    if (0.0..1.0).contains(&u) {
                        assert_eq!(z.rank_for(u), z.rank_for_uncached(u), "boundary {i} u={u}");
                    }
                }
            }
        }
    }

    #[test]
    fn rank_table_gates_on_size() {
        assert!(Zipf::new(RANK_TABLE_MIN_N - 1, 0.8).table.is_none());
        assert!(Zipf::new(RANK_TABLE_MIN_N, 0.8).table.is_some());
        assert!(Zipf::new(RANK_TABLE_MAX_N + 1, 0.8).table.is_none());
    }

    #[test]
    fn table_slices_scales_with_n_within_bounds() {
        assert_eq!(table_slices(RANK_TABLE_MIN_N), RANK_TABLE_MIN_SLICES);
        assert_eq!(table_slices(8192), RANK_TABLE_MIN_SLICES);
        assert_eq!(table_slices(16384), 1 << 17);
        assert_eq!(table_slices(32768), RANK_TABLE_MAX_SLICES);
        assert_eq!(table_slices(RANK_TABLE_MAX_N), RANK_TABLE_MAX_SLICES);
        assert_eq!(table_slices(u64::MAX), RANK_TABLE_MAX_SLICES);
        for n in [513u64, 8191, 20000, 40000] {
            assert!(table_slices(n).is_power_of_two(), "n={n}");
        }
    }

    // `zeta` with the nudged theta, argument order flipped to catch swaps.
    fn zeta(theta: f64, n: u64) -> f64 {
        super::zeta(n, theta)
    }

    #[test]
    #[should_panic(expected = "n > 0")]
    fn zero_items_panics() {
        Zipf::new(0, 0.5);
    }

    #[test]
    #[should_panic(expected = "theta > 0")]
    fn bad_theta_panics() {
        Zipf::new(10, 0.0);
    }
}
