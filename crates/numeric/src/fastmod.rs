//! Exact remainder by a fixed divisor without a hardware divide.
//!
//! The workload generators map a Zipf rank to a cache line with
//! `(rank * mult) % ws_lines` once per access; a 64-bit `div` is the
//! single most expensive ALU operation left on that path. For divisors
//! known at stream construction, Lemire & Kaser's *fastmod* ("Faster
//! remainders when the divisor is a constant", 2019) computes the exact
//! remainder with one wrapping multiply and one widening multiply:
//! with `M = ceil(2^64 / d)`, for any `x < 2^32` and `d < 2^32`,
//! `x % d == ((M.wrapping_mul(x) as u128 * d as u128) >> 64)`.

/// Remainder by a divisor fixed at construction, exact and div-free for
/// 32-bit operands, falling back to `%` for larger ones.
///
/// # Examples
///
/// ```
/// use icp_numeric::FastMod;
///
/// let m = FastMod::new(12_345);
/// assert_eq!(m.rem(987_654_321), 987_654_321 % 12_345);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FastMod {
    d: u64,
    /// `ceil(2^64 / d)`, or 0 when `d` is too large for the div-free path
    /// (and for `d == 1`, where the fallback is equally exact).
    m: u64,
}

/// Largest divisor the div-free path accepts: keeps `x = rank * mult`
/// (both factors `< d`) below `2^32`, the fastmod exactness bound.
const FAST_MAX_D: u64 = 1 << 16;

impl FastMod {
    /// Prepares a divisor. Divisors above `2^16` use a plain `%` in
    /// [`Self::rem`] — still correct, just not div-free.
    ///
    /// # Panics
    /// Panics if `d == 0`.
    pub fn new(d: u64) -> Self {
        assert!(d > 0, "FastMod requires d > 0");
        // d == 1 would wrap ceil(2^64 / 1) to 0, which is exactly the
        // fallback sentinel — and `x % 1` is free anyway.
        let m = if d <= FAST_MAX_D { (u64::MAX / d).wrapping_add(1) } else { 0 };
        FastMod { d, m }
    }

    /// The divisor.
    pub fn divisor(&self) -> u64 {
        self.d
    }

    /// `x % d`. Div-free (and bit-exact) when the divisor took the fast
    /// path and `x < 2^32`; a plain `%` otherwise.
    #[inline]
    pub fn rem(&self, x: u64) -> u64 {
        if self.m != 0 {
            debug_assert!(x < 1 << 32, "fastmod exactness requires x < 2^32");
            let low = self.m.wrapping_mul(x);
            ((low as u128 * self.d as u128) >> 64) as u64
        } else {
            x % self.d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn matches_modulo_for_random_operands() {
        let mut rng = Xoshiro256::seed_from_u64(0xFA57_0D);
        for _ in 0..200 {
            let d = rng.next_bounded(FAST_MAX_D) + 1;
            let m = FastMod::new(d);
            assert_eq!(m.divisor(), d);
            for _ in 0..500 {
                let x = rng.next_bounded(1 << 32);
                assert_eq!(m.rem(x), x % d, "d={d} x={x}");
            }
        }
    }

    #[test]
    fn matches_modulo_at_edges() {
        for d in [1u64, 2, 3, 7, 64, 65_535, FAST_MAX_D] {
            let m = FastMod::new(d);
            for x in [0u64, 1, d - 1, d, d + 1, (1 << 32) - 1] {
                assert_eq!(m.rem(x), x % d, "d={d} x={x}");
            }
        }
    }

    #[test]
    fn large_divisors_fall_back_exactly() {
        let mut rng = Xoshiro256::seed_from_u64(0xFA57_0E);
        for d in [FAST_MAX_D + 1, 1 << 20, u64::MAX] {
            let m = FastMod::new(d);
            for _ in 0..100 {
                let x = rng.next_u64();
                assert_eq!(m.rem(x), x % d, "d={d} x={x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "d > 0")]
    fn zero_divisor_panics() {
        FastMod::new(0);
    }
}
