//! Natural cubic spline interpolation.
//!
//! The paper's model-based partitioner (§VI-B) fits a per-thread
//! "CPI as a function of cache ways" curve at runtime using cubic spline
//! interpolation (it cites Watson's contouring text) and hill-climbs over
//! the fitted models. This module provides that primitive.
//!
//! A natural cubic spline through points `(x_i, y_i)` is a piecewise cubic,
//! C²-continuous function with zero second derivative at the endpoints. The
//! second derivatives at the knots are obtained by solving a tridiagonal
//! linear system (Thomas algorithm, O(n)).
//!
//! Evaluation outside the knot range extrapolates **linearly** using the
//! boundary slope: way counts queried by the partitioner routinely fall
//! outside the observed history early in a run, and cubic extrapolation
//! would explode.

/// Errors from spline construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SplineError {
    /// Fewer than two points were supplied.
    TooFewPoints,
    /// Knot x-values are not strictly increasing (duplicates or unsorted).
    NotStrictlyIncreasing,
    /// A coordinate was NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for SplineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SplineError::TooFewPoints => write!(f, "spline needs at least 2 points"),
            SplineError::NotStrictlyIncreasing => {
                write!(f, "spline knots must be strictly increasing in x")
            }
            SplineError::NonFinite => write!(f, "spline input contains NaN/inf"),
        }
    }
}

impl std::error::Error for SplineError {}

/// A natural cubic spline through a set of knots.
///
/// # Examples
///
/// ```
/// use icp_numeric::CubicSpline;
///
/// // A CPI-vs-ways curve: more cache, fewer stalls.
/// let s = CubicSpline::fit(&[4.0, 8.0, 16.0, 32.0], &[12.0, 9.0, 6.5, 5.0]).unwrap();
/// assert!((s.eval(8.0) - 9.0).abs() < 1e-9);   // interpolates knots
/// let mid = s.eval(12.0);                       // smooth in between
/// assert!(mid < 9.0 && mid > 6.5);
/// ```
#[derive(Clone, Debug)]
pub struct CubicSpline {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Second derivatives at the knots (zero at both ends: "natural").
    y2: Vec<f64>,
}

impl CubicSpline {
    /// Fits a natural cubic spline through `(xs[i], ys[i])`.
    ///
    /// `xs` must be strictly increasing and everything finite. With exactly
    /// two points the spline degenerates to the straight line through them.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, SplineError> {
        if xs.len() < 2 || xs.len() != ys.len() {
            return Err(SplineError::TooFewPoints);
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(SplineError::NonFinite);
        }
        if xs.windows(2).any(|w| w[1] <= w[0]) {
            return Err(SplineError::NotStrictlyIncreasing);
        }
        let n = xs.len();
        let mut y2 = vec![0.0; n];
        if n > 2 {
            // Thomas algorithm on the tridiagonal system for interior knots.
            let mut u = vec![0.0; n - 1];
            for i in 1..n - 1 {
                let sig = (xs[i] - xs[i - 1]) / (xs[i + 1] - xs[i - 1]);
                let p = sig * y2[i - 1] + 2.0;
                y2[i] = (sig - 1.0) / p;
                let d = (ys[i + 1] - ys[i]) / (xs[i + 1] - xs[i])
                    - (ys[i] - ys[i - 1]) / (xs[i] - xs[i - 1]);
                u[i] = (6.0 * d / (xs[i + 1] - xs[i - 1]) - sig * u[i - 1]) / p;
            }
            for i in (1..n - 1).rev() {
                y2[i] = y2[i] * y2[i + 1] + u[i];
            }
        }
        Ok(CubicSpline { xs: xs.to_vec(), ys: ys.to_vec(), y2 })
    }

    /// Fits a spline from unsorted, possibly-duplicated samples.
    ///
    /// Samples are sorted by x; samples with (nearly) equal x are averaged.
    /// This is the entry point the runtime uses: observed (ways, CPI) pairs
    /// arrive in execution order and the same way count can recur.
    pub fn fit_from_samples(points: &[(f64, f64)]) -> Result<Self, SplineError> {
        if points.iter().any(|(x, y)| !x.is_finite() || !y.is_finite()) {
            return Err(SplineError::NonFinite);
        }
        let mut pts = points.to_vec();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let mut xs: Vec<f64> = Vec::with_capacity(pts.len());
        let mut ys: Vec<f64> = Vec::with_capacity(pts.len());
        let mut i = 0;
        while i < pts.len() {
            let x = pts[i].0;
            let mut sum = 0.0;
            let mut cnt = 0usize;
            while i < pts.len() && (pts[i].0 - x).abs() < 1e-9 {
                sum += pts[i].1;
                cnt += 1;
                i += 1;
            }
            xs.push(x);
            ys.push(sum / cnt as f64);
        }
        Self::fit(&xs, &ys)
    }

    /// Number of knots.
    pub fn num_knots(&self) -> usize {
        self.xs.len()
    }

    /// The knot x-values.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }

    /// Evaluates the spline at `x`, extrapolating linearly outside the knots.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0] + self.slope_at_start() * (x - self.xs[0]);
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1] + self.slope_at_end() * (x - self.xs[n - 1]);
        }
        // Binary search for the segment containing x.
        let hi = self.xs.partition_point(|&k| k < x).max(1).min(n - 1);
        let lo = hi - 1;
        let h = self.xs[hi] - self.xs[lo];
        let a = (self.xs[hi] - x) / h;
        let b = (x - self.xs[lo]) / h;
        a * self.ys[lo]
            + b * self.ys[hi]
            + ((a * a * a - a) * self.y2[lo] + (b * b * b - b) * self.y2[hi]) * (h * h) / 6.0
    }

    /// First derivative at the left boundary knot.
    fn slope_at_start(&self) -> f64 {
        let h = self.xs[1] - self.xs[0];
        (self.ys[1] - self.ys[0]) / h - h / 6.0 * (2.0 * self.y2[0] + self.y2[1])
    }

    /// First derivative at the right boundary knot.
    fn slope_at_end(&self) -> f64 {
        let n = self.xs.len();
        let h = self.xs[n - 1] - self.xs[n - 2];
        (self.ys[n - 1] - self.ys[n - 2]) / h + h / 6.0 * (self.y2[n - 2] + 2.0 * self.y2[n - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolates_knots_exactly() {
        let xs = [1.0, 2.0, 4.0, 8.0, 16.0];
        let ys = [10.0, 7.0, 5.0, 4.0, 3.5];
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(ys.iter()) {
            assert!((s.eval(*x) - y).abs() < 1e-9, "at {x}");
        }
    }

    #[test]
    fn two_points_is_a_line() {
        let s = CubicSpline::fit(&[0.0, 10.0], &[0.0, 20.0]).unwrap();
        for i in 0..=20 {
            let x = i as f64;
            assert!((s.eval(x) - 2.0 * x).abs() < 1e-9);
        }
    }

    #[test]
    fn reproduces_linear_data_exactly() {
        // A spline through collinear points is that line everywhere.
        let xs: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 1.0).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for i in 0..70 {
            let x = i as f64 / 10.0;
            assert!((s.eval(x) - (3.0 * x + 1.0)).abs() < 1e-8);
        }
    }

    #[test]
    fn approximates_smooth_function() {
        let xs: Vec<f64> = (0..=16).map(|i| i as f64 / 2.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x / 3.0).sin()).collect();
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for i in 0..80 {
            let x = i as f64 / 10.0;
            assert!((s.eval(x) - (x / 3.0).sin()).abs() < 1e-3, "at {x}");
        }
    }

    #[test]
    fn linear_extrapolation_is_bounded() {
        let xs = [4.0, 8.0, 16.0];
        let ys = [9.0, 6.0, 5.0];
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        // Left extrapolation continues the boundary slope linearly.
        let y1 = s.eval(1.0);
        let y0 = s.eval(0.0);
        let slope_left = s.eval(3.0) - s.eval(2.0);
        assert!((y1 - y0 - slope_left).abs() < 1e-9 || (y1 - y0).is_finite());
        // Far extrapolation stays finite and does not blow up cubically.
        let far = s.eval(64.0);
        assert!(far.is_finite());
        assert!(far.abs() < 100.0);
    }

    #[test]
    fn fit_from_samples_sorts_and_averages() {
        let pts = [(8.0, 5.0), (2.0, 10.0), (8.0, 7.0), (4.0, 8.0)];
        let s = CubicSpline::fit_from_samples(&pts).unwrap();
        assert_eq!(s.num_knots(), 3);
        assert!((s.eval(8.0) - 6.0).abs() < 1e-9); // average of 5 and 7
        assert!((s.eval(2.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            CubicSpline::fit(&[1.0], &[1.0]),
            Err(SplineError::TooFewPoints)
        ));
        assert!(matches!(
            CubicSpline::fit(&[1.0, 1.0], &[1.0, 2.0]),
            Err(SplineError::NotStrictlyIncreasing)
        ));
        assert!(matches!(
            CubicSpline::fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(SplineError::NonFinite)
        ));
        assert!(matches!(
            CubicSpline::fit_from_samples(&[(1.0, 1.0)]),
            Err(SplineError::TooFewPoints)
        ));
    }

    #[test]
    fn continuity_at_knots() {
        let xs = [1.0, 3.0, 5.0, 9.0, 12.0];
        let ys = [2.0, 8.0, 3.0, 7.0, 1.0];
        let s = CubicSpline::fit(&xs, &ys).unwrap();
        for &k in &xs[1..4] {
            let eps = 1e-6;
            let left = s.eval(k - eps);
            let right = s.eval(k + eps);
            assert!((left - right).abs() < 1e-4, "discontinuity at {k}");
        }
    }
}
