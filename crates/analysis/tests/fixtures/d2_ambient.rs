//! D2 fixture: ambient nondeterminism inside the deterministic closure.
//! Expected: four `det_ambient` findings, one per source, all inside
//! `det_d2_root`; the identical clock read in `cold_d2_helper` (outside
//! the closure) stays silent.

#[deterministic]
fn det_d2_root() -> u64 {
    let t = std::time::Instant::now();
    let s = std::time::SystemTime::now();
    let id = std::thread::current();
    let n = std::thread::available_parallelism();
    let _ = (t, s, id, n);
    0
}

fn cold_d2_helper() -> std::time::Instant {
    std::time::Instant::now()
}
