// Fixture: R1 violation — an unsafe block with no SAFETY comment.
// (Also an R2 violation under the fixture config, which allowlists only
// allowed_unsafe.rs; the self-test asserts both rules fire.)

fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}
