//! D3 fixture: float reductions in the closure need an `// ORDER:` note.
//! Expected: one `det_float_order` finding on the first `.sum()`; the
//! second is excused by its comment, the third reduces integers.

#[deterministic]
fn det_d3_merge(per_shard: &[f64]) -> f64 {
    let unordered: f64 = per_shard.iter().sum();
    // ORDER: slice index order is shard order, fixed at construction.
    let ordered: f64 = per_shard.iter().sum();
    let count: u64 = per_shard.iter().map(|_| 1u64).sum::<u64>();
    unordered + ordered + count as f64
}
