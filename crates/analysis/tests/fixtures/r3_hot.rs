// Fixture: R3 violations — unwrap/expect/panic! and div-mod indexing in a
// module the fixture config declares hot-path. The test module at the bottom
// must NOT be flagged.

fn quota(v: &[u32], t: usize) -> u32 {
    v.get(t).copied().unwrap()
}

fn quota2(v: &[u32], t: usize) -> u32 {
    v.get(t).copied().expect("in range")
}

fn boom() {
    panic!("hot paths must not panic");
}

fn fold(v: &[u32], i: usize, n: usize) -> u32 {
    v[i % n]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v = [1u32];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
