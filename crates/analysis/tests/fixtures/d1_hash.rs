//! D1 fixture: `HashMap`/`HashSet` visible to deterministic-closure code.
//! Expected: four `det_hash_container` findings — two on the `use` line,
//! one on the struct field, one (deduped) in the closure-fn body.

use std::collections::{HashMap, HashSet};

struct RankCache {
    by_key: HashMap<u64, u64>,
}

#[deterministic]
fn det_d1_root(cache: &RankCache) -> u64 {
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(1);
    cache.by_key.len() as u64 + seen.len() as u64
}
