//! D5 fixture: obligations propagate transitively through the call graph.
//! Expected: two `det_transitive` findings — the `.unwrap()` in `d5_leaf`,
//! two hops below the `#[deterministic]` root (diagnostic names `d5_mid`
//! as the via edge), and the allocation in `d5_hot_helper`, one hop below
//! the `#[hot_path]` root. Neither helper carries a marker of its own.

#[deterministic]
fn det_d5_root(xs: &[u64]) -> u64 {
    d5_mid(xs)
}

fn d5_mid(xs: &[u64]) -> u64 {
    d5_leaf(xs.first().copied())
}

fn d5_leaf(x: Option<u64>) -> u64 {
    x.unwrap()
}

#[hot_path]
fn d5_hot_root(n: usize) -> usize {
    d5_hot_helper(n)
}

fn d5_hot_helper(n: usize) -> usize {
    let scratch: Vec<usize> = Vec::with_capacity(n);
    scratch.capacity()
}
