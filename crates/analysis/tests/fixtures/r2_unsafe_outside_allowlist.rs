// Fixture: R2 violation — unsafe (with a proper SAFETY comment, so R1 is
// satisfied) in a module that is not on the unsafe allowlist.

fn read_first(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer to at least one readable byte.
    unsafe { *p }
}
