// Fixture: fully clean file — no rule may produce a finding here, even with
// mentions of unsafe, unwrap() and panic! in comments and "panic! strings".

fn checked_quota(v: &[u32], t: usize) -> u32 {
    // An unwrap() here would trip R3 if this file were a hot module.
    v.get(t).copied().unwrap_or(0)
}

#[hot_path]
fn hot_sum(v: &[u32]) -> u64 {
    let mut acc = 0u64;
    for &x in v {
        acc += u64::from(x);
    }
    acc
}

fn describe() -> &'static str {
    "unsafe { panic!() } is fine inside a string literal"
}
