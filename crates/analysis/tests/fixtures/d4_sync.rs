//! D4 fixture: sync discipline in a listed concurrency module (the fixture
//! `analysis.toml` lists `d4_sync.rs` under `[rules.det_sync]`).
//! Expected: six `det_sync` findings — `AtomicU64` and `Mutex` on the two
//! `use` lines, then `Mutex`, `AtomicU64`, `Ordering::Relaxed` and
//! `thread::spawn` in the body.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

fn d4_worker_pool() {
    let lock = Mutex::new(0u64);
    let counter = AtomicU64::new(0);
    counter.fetch_add(1, Ordering::Relaxed);
    std::thread::spawn(|| {});
    drop(lock);
}
