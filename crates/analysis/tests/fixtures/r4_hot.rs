// Fixture: R4 violations — heap allocation inside #[hot_path] functions.
// The unmarked sibling does the same and must NOT be flagged.

#[hot_path]
fn hot_scan(tags: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &t in tags {
        out.push(t);
    }
    let _label = format!("{} tags", out.len());
    out.clone()
}

fn cold_scan(tags: &[u64]) -> Vec<u64> {
    let mut out = Vec::new();
    for &t in tags {
        out.push(t);
    }
    out
}
