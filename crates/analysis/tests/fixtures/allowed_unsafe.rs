// Fixture: clean unsafe usage inside the allowlisted module — R2 permits the
// module, and the SAFETY comment satisfies R1.

fn read_first(p: *const u8) -> u8 {
    // SAFETY: callers pass a pointer to at least one readable byte.
    unsafe { *p }
}
