//! Fixture-based self-tests for the lint pass, plus the tier-1 gate that the
//! real workspace is clean.
//!
//! Each rule R1–R4 and determinism rule D1–D5 has a fixture under
//! `tests/fixtures/` seeding a deliberate violation; the tests assert the
//! rule fires with a pointed diagnostic and an exact count/span (and that
//! the clean fixtures stay clean). The binary is exercised end to end:
//! non-zero exit on the fixture tree, zero exit on the actual repository.

use std::path::{Path, PathBuf};
use std::process::Command;

use icp_analysis::{
    analyze_workspace, rules::check_file, rules_determinism, CallGraph, Config, RULE_NAMES,
};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root resolves")
}

fn fixture_cfg() -> Config {
    Config::load(&fixtures_dir().join("analysis.toml")).expect("fixture config parses")
}

fn check_fixture(name: &str) -> Vec<icp_analysis::Finding> {
    let src = std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture readable");
    check_file(name, &src, &fixture_cfg())
}

/// Runs the D-rules over one fixture, with a call graph built from that
/// fixture alone (each determinism fixture is self-contained).
fn check_det_fixture(name: &str) -> Vec<icp_analysis::Finding> {
    let src = std::fs::read_to_string(fixtures_dir().join(name)).expect("fixture readable");
    let sources = vec![(name.to_string(), src.clone())];
    let graph = CallGraph::build(&sources);
    rules_determinism::check_file(name, &src, &fixture_cfg(), &graph)
}

#[test]
fn r1_fixture_fires_safety_comment() {
    let f = check_fixture("r1_missing_safety.rs");
    let r1: Vec<_> = f.iter().filter(|x| x.rule == "safety_comment").collect();
    assert_eq!(r1.len(), 1, "{f:?}");
    assert!(r1[0].message.contains("SAFETY"), "{}", r1[0].message);
    assert_eq!(r1[0].line, 6);
}

#[test]
fn r2_fixture_fires_unsafe_allowlist() {
    let f = check_fixture("r2_unsafe_outside_allowlist.rs");
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].rule, "unsafe_allowlist");
    assert!(f[0].message.contains("allowed_unsafe.rs"), "{}", f[0].message);
}

#[test]
fn r3_fixture_fires_no_panic_for_each_pattern() {
    let f = check_fixture("r3_hot.rs");
    let r3: Vec<_> = f.iter().filter(|x| x.rule == "no_panic").collect();
    assert_eq!(r3.len(), 4, "{f:?}");
    assert!(r3.iter().any(|x| x.message.contains(".unwrap()")));
    assert!(r3.iter().any(|x| x.message.contains(".expect()")));
    assert!(r3.iter().any(|x| x.message.contains("`panic!`")));
    assert!(r3.iter().any(|x| x.message.contains("index expression")));
}

#[test]
fn r4_fixture_fires_no_alloc_only_in_marked_fn() {
    let f = check_fixture("r4_hot.rs");
    let r4: Vec<_> = f.iter().filter(|x| x.rule == "no_alloc_hot_path").collect();
    assert_eq!(r4.len(), 4, "{f:?}");
    for x in &r4 {
        assert!(x.message.contains("`hot_scan`"), "{}", x.message);
    }
    let labels: Vec<&str> = ["Vec::new", ".push()", "format!", ".clone()"]
        .into_iter()
        .filter(|l| r4.iter().any(|x| x.message.contains(l)))
        .collect();
    assert_eq!(labels.len(), 4, "{r4:?}");
}

#[test]
fn clean_fixtures_stay_clean() {
    assert!(check_fixture("clean.rs").is_empty());
    assert!(check_fixture("allowed_unsafe.rs").is_empty());
}

#[test]
fn d1_fixture_fires_in_use_field_and_body_positions() {
    let f = check_det_fixture("d1_hash.rs");
    let d1: Vec<_> = f.iter().filter(|x| x.rule == "det_hash_container").collect();
    assert_eq!(d1.len(), 4, "{f:?}");
    // The `use` line carries both containers; the field and the body (after
    // per-line dedup) carry one each.
    let lines: Vec<u32> = d1.iter().map(|x| x.line).collect();
    assert_eq!(lines, vec![5, 5, 8, 13], "{d1:?}");
    assert!(d1.iter().any(|x| x.message.contains("type/signature position")), "{d1:?}");
    assert!(d1.iter().any(|x| x.message.contains("`det_d1_root`")), "{d1:?}");
}

#[test]
fn d2_fixture_fires_per_ambient_source_and_spares_cold_code() {
    let f = check_det_fixture("d2_ambient.rs");
    let d2: Vec<_> = f.iter().filter(|x| x.rule == "det_ambient").collect();
    assert_eq!(d2.len(), 4, "{f:?}");
    assert_eq!(d2.iter().map(|x| x.line).collect::<Vec<_>>(), vec![8, 9, 10, 11], "{d2:?}");
    for what in ["Instant::now", "SystemTime", "thread::current", "available_parallelism"] {
        assert!(d2.iter().any(|x| x.message.contains(what)), "missing {what}: {d2:?}");
    }
    // `cold_d2_helper` reads the same clock outside the closure: silent.
    assert!(d2.iter().all(|x| x.line < 16), "{d2:?}");
}

#[test]
fn d3_fixture_fires_once_and_order_comment_excuses() {
    let f = check_det_fixture("d3_float.rs");
    let d3: Vec<_> = f.iter().filter(|x| x.rule == "det_float_order").collect();
    assert_eq!(d3.len(), 1, "{f:?}");
    assert_eq!(d3[0].line, 7);
    assert!(d3[0].message.contains("ORDER:"), "{}", d3[0].message);
}

#[test]
fn d4_fixture_fires_per_sync_primitive() {
    let f = check_det_fixture("d4_sync.rs");
    let d4: Vec<_> = f.iter().filter(|x| x.rule == "det_sync").collect();
    assert_eq!(d4.len(), 6, "{f:?}");
    for what in ["Mutex", "AtomicU64", "Ordering::Relaxed", "thread::spawn"] {
        assert!(d4.iter().any(|x| x.message.contains(what)), "missing {what}: {d4:?}");
    }
}

#[test]
fn d5_fixture_propagates_two_hops_with_via_diagnostics() {
    let f = check_det_fixture("d5_transitive.rs");
    let d5: Vec<_> = f.iter().filter(|x| x.rule == "det_transitive").collect();
    assert_eq!(d5.len(), 2, "{f:?}");
    let panic_half = d5.iter().find(|x| x.message.contains(".unwrap()")).expect("panic half");
    assert_eq!(panic_half.line, 17);
    assert!(panic_half.message.contains("`d5_leaf`"), "{}", panic_half.message);
    assert!(panic_half.message.contains("via `d5_mid`"), "{}", panic_half.message);
    let alloc_half =
        d5.iter().find(|x| x.message.contains("Vec::with_capacity")).expect("alloc half");
    assert_eq!(alloc_half.line, 26);
    assert!(alloc_half.message.contains("via `d5_hot_root`"), "{}", alloc_half.message);
}

#[test]
fn binary_exits_nonzero_on_seeded_violations() {
    let json = std::env::temp_dir().join("icp-lint-fixture-report.json");
    let out = Command::new(env!("CARGO_BIN_EXE_icp-lint"))
        .args(["--root"])
        .arg(fixtures_dir())
        .args(["-D", "--json"])
        .arg(&json)
        .output()
        .expect("icp-lint runs");
    assert!(!out.status.success(), "fixtures must fail the lint");
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in RULE_NAMES {
        assert!(stdout.contains(rule), "missing {rule} diagnostic in:\n{stdout}");
    }
    let report = std::fs::read_to_string(&json).expect("JSON report written");
    assert!(report.contains("\"schema\":\"icp-lint/v2\""), "{report}");
    assert!(report.contains("\"schema_version\":2"), "{report}");
    assert!(report.contains("\"no_panic\":4"), "{report}");
    assert!(report.contains("\"det_hash_container\":4"), "{report}");
    assert!(report.contains("\"det_ambient\":4"), "{report}");
    assert!(report.contains("\"det_float_order\":1"), "{report}");
    assert!(report.contains("\"det_sync\":6"), "{report}");
    assert!(report.contains("\"det_transitive\":2"), "{report}");
    let _ = std::fs::remove_file(&json);
}

#[test]
fn binary_exits_zero_on_this_repository() {
    let out = Command::new(env!("CARGO_BIN_EXE_icp-lint"))
        .args(["--root"])
        .arg(repo_root())
        .args(["-D", "-q"])
        .output()
        .expect("icp-lint runs");
    assert!(
        out.status.success(),
        "the repository must lint clean:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn workspace_analysis_is_clean_and_scans_the_hot_path() {
    let root = repo_root();
    let cfg = Config::load(&root.join("analysis.toml")).expect("repo analysis.toml parses");
    assert!(cfg.unknown_rule_names(RULE_NAMES).is_empty(), "typo'd rule table");
    let report = analyze_workspace(&root, &cfg).expect("walk succeeds");
    assert!(
        report.is_clean(),
        "workspace findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The walk must actually cover the modules the rules exist for.
    assert!(report.files_scanned > 50, "only scanned {}", report.files_scanned);
}
