//! `analysis.toml` parsing.
//!
//! The environment has no registry access, so instead of the `toml` crate
//! this is a minimal hand-rolled parser for the subset the lint actually
//! uses: `[section.subsection]` headers and `key = value` pairs where a
//! value is a boolean, a quoted string, or a (single- or multi-line) array
//! of quoted strings. Unknown keys are preserved (and reported by
//! [`Config::unknown_rule_names`]) so a typo'd rule name fails loudly
//! instead of silently disabling a rule.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// A parsed configuration value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `true` / `false`.
    Bool(bool),
    /// `"..."`.
    Str(String),
    /// `["a", "b"]`.
    List(Vec<String>),
}

/// Parse error with 1-based line context.
#[derive(Clone, Debug)]
pub struct ConfigError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "analysis.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Per-rule settings: an `enabled` flag plus free-form string lists.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    /// Keys under the rule's `[rules.<name>]` table.
    pub keys: BTreeMap<String, Value>,
}

impl RuleConfig {
    /// The rule's `enabled` key; rules default to enabled.
    pub fn enabled(&self) -> bool {
        match self.keys.get("enabled") {
            Some(Value::Bool(b)) => *b,
            _ => true,
        }
    }

    /// A string-list key (`modules`, `allow`, ...); empty if absent.
    pub fn list(&self, key: &str) -> &[String] {
        match self.keys.get(key) {
            Some(Value::List(v)) => v,
            _ => &[],
        }
    }
}

/// The lint configuration: global settings plus per-rule tables.
#[derive(Clone, Debug, Default)]
pub struct Config {
    /// Path prefixes (relative to the workspace root, `/`-separated)
    /// excluded from the walk. `target` is always excluded.
    pub exclude: Vec<String>,
    /// `deny` (findings fail the run) or `warn` (report only). The binary's
    /// `-D` flag forces `deny`.
    pub severity: String,
    /// Per-rule tables keyed by rule name.
    pub rules: BTreeMap<String, RuleConfig>,
}

impl Config {
    /// Parses a configuration from TOML text.
    pub fn parse(text: &str) -> Result<Config, ConfigError> {
        let mut cfg = Config { severity: "deny".to_string(), ..Config::default() };
        let mut section: Vec<String> = Vec::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let name = rest.strip_suffix(']').ok_or_else(|| ConfigError {
                    line: lineno,
                    message: format!("malformed section header: {raw:?}"),
                })?;
                section = name.split('.').map(|s| s.trim().to_string()).collect();
                continue;
            }
            let (key, val_text) = line.split_once('=').ok_or_else(|| ConfigError {
                line: lineno,
                message: format!("expected `key = value`, got {raw:?}"),
            })?;
            let key = key.trim().to_string();
            let mut val_text = val_text.trim().to_string();
            // Multi-line array: keep consuming lines until brackets balance.
            if val_text.starts_with('[') {
                while !brackets_balanced(&val_text) {
                    let (_, next) = lines.next().ok_or_else(|| ConfigError {
                        line: lineno,
                        message: "unterminated array".to_string(),
                    })?;
                    val_text.push(' ');
                    val_text.push_str(strip_comment(next).trim());
                }
            }
            let value = parse_value(&val_text, lineno)?;
            cfg.insert(&section, key, value, lineno)?;
        }
        Ok(cfg)
    }

    /// Loads and parses `path`.
    pub fn load(path: &Path) -> Result<Config, ConfigError> {
        let text = std::fs::read_to_string(path).map_err(|e| ConfigError {
            line: 0,
            message: format!("cannot read {}: {e}", path.display()),
        })?;
        Config::parse(&text)
    }

    /// The table for `rule`, or a default (enabled, empty lists).
    pub fn rule(&self, rule: &str) -> RuleConfig {
        self.rules.get(rule).cloned().unwrap_or_default()
    }

    /// Rule tables that don't correspond to any known rule name — almost
    /// certainly a typo that would otherwise silently disable enforcement.
    pub fn unknown_rule_names(&self, known: &[&str]) -> Vec<String> {
        self.rules
            .keys()
            .filter(|k| !known.contains(&k.as_str()))
            .cloned()
            .collect()
    }

    fn insert(
        &mut self,
        section: &[String],
        key: String,
        value: Value,
        lineno: usize,
    ) -> Result<(), ConfigError> {
        match section {
            [s] if s == "lint" => match (key.as_str(), &value) {
                ("exclude", Value::List(v)) => self.exclude = v.clone(),
                ("severity", Value::Str(s)) if s == "deny" || s == "warn" => {
                    self.severity = s.clone();
                }
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("unknown or mistyped [lint] key `{key}`"),
                    })
                }
            },
            [s, rule] if s == "rules" => {
                self.rules.entry(rule.clone()).or_default().keys.insert(key, value);
            }
            _ => {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("unknown section [{}]", section.join(".")),
                })
            }
        }
        Ok(())
    }
}

/// Strips a trailing `# comment` that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn brackets_balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth <= 0
}

fn parse_value(text: &str, lineno: usize) -> Result<Value, ConfigError> {
    let text = text.trim();
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let s = inner.strip_suffix('"').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("unterminated string: {text:?}"),
        })?;
        return Ok(Value::Str(s.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner.strip_suffix(']').ok_or_else(|| ConfigError {
            line: lineno,
            message: format!("unterminated array: {text:?}"),
        })?;
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part, lineno)? {
                Value::Str(s) => items.push(s),
                _ => {
                    return Err(ConfigError {
                        line: lineno,
                        message: format!("arrays may only hold strings: {part:?}"),
                    })
                }
            }
        }
        return Ok(Value::List(items));
    }
    Err(ConfigError { line: lineno, message: format!("unsupported value: {text:?}") })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let cfg = Config::parse(
            "# header\n[lint]\nseverity = \"warn\"\nexclude = [\"a/b\", \"c\"] # trailing\n\n\
             [rules.no_panic]\nenabled = true\nmodules = [\n  \"x.rs\",\n  \"y.rs\",\n]\n",
        )
        .expect("parses");
        assert_eq!(cfg.severity, "warn");
        assert_eq!(cfg.exclude, ["a/b", "c"]);
        let r = cfg.rule("no_panic");
        assert!(r.enabled());
        assert_eq!(r.list("modules"), ["x.rs", "y.rs"]);
    }

    #[test]
    fn defaults_are_enabled_deny_empty() {
        let cfg = Config::parse("").expect("empty ok");
        assert_eq!(cfg.severity, "deny");
        assert!(cfg.rule("anything").enabled());
        assert!(cfg.rule("anything").list("allow").is_empty());
    }

    #[test]
    fn disabled_rule_round_trips() {
        let cfg = Config::parse("[rules.safety_comment]\nenabled = false\n").expect("ok");
        assert!(!cfg.rule("safety_comment").enabled());
    }

    #[test]
    fn unknown_rules_are_surfaced() {
        let cfg = Config::parse("[rules.no_pancake]\nenabled = false\n").expect("ok");
        assert_eq!(cfg.unknown_rule_names(&["no_panic"]), ["no_pancake"]);
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(Config::parse("[lint\n").is_err());
        assert!(Config::parse("[lint]\nseverity = 5\n").is_err());
        assert!(Config::parse("[lint]\nnot_a_key = true\n").is_err());
        assert!(Config::parse("[wat]\nx = true\n").is_err());
    }
}
