//! The lint rules (R1–R4) over the lexed token stream.
//!
//! The walker tracks just enough structure — brace depth, the current
//! function, `#[cfg(test)]` regions, `#[hot_path]` markers — to scope each
//! rule the way the repo's conventions demand:
//!
//! * **R1 `safety_comment`** — every `unsafe` block / `unsafe fn` carries a
//!   `// SAFETY:` comment (or a `# Safety` doc section) nearby.
//! * **R2 `unsafe_allowlist`** — `unsafe` appears only in an allowlisted
//!   module set (today: the SIMD intrinsics in `cmp-sim/src/l2.rs`).
//! * **R3 `no_panic`** — no `.unwrap()` / `.expect()` / `panic!` /
//!   division-or-modulo-inside-indexing in hot-path modules, outside
//!   `#[cfg(test)]`.
//! * **R4 `no_alloc_hot_path`** — no heap allocation (`Vec::new`, `vec!`,
//!   `Box::new`, `format!`, container `clone()`, `push`, `collect`, ...)
//!   inside functions marked `#[hot_path]`.
//!
//! Waivers live in `analysis.toml` as `allow` lists of `"file.rs::function"`
//! entries (or bare `"file.rs"` for a whole file), so every exception is
//! recorded in one reviewable place.

use crate::config::Config;
use crate::lexer::{lex, TokKind, Token};

/// Names of all implemented rules, for config validation and report counts:
/// the per-file rules R1–R4 here, plus the call-graph determinism rules
/// D1–D5 in [`crate::rules_determinism`].
pub const RULE_NAMES: &[&str] = &[
    "safety_comment",
    "unsafe_allowlist",
    "no_panic",
    "no_alloc_hot_path",
    "det_hash_container",
    "det_ambient",
    "det_float_order",
    "det_sync",
    "det_transitive",
];

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Workspace-relative `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable diagnostic.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}:{}: {}", self.rule, self.file, self.line, self.message)
    }
}

/// Keywords that can directly precede a `[` without it being an index
/// expression (array literals, slice types, ...).
pub(crate) const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "in", "return", "if", "else", "match", "const", "static", "let", "as", "ref",
    "move", "box", "dyn", "where", "break", "yield",
];

/// Scope kind tracked by the walker.
#[derive(Clone, Debug)]
struct Scope {
    /// Brace depth at which this scope's `{` opened.
    open_depth: u32,
    /// Inside `#[cfg(test)]` / `#[test]` (inherited by nested scopes).
    is_test: bool,
    /// Function carries `#[hot_path]` (inherited by closures within).
    hot: bool,
    /// Function name if this scope is a function body.
    fn_name: Option<String>,
}

/// Lints one file. `rel_path` is the workspace-relative path used both for
/// module matching and in findings.
// The walker keys each arm on a token and then applies the rule's full
// predicate inside; folding those predicates into match guards (as
// `collapsible_match` suggests) would bury them in the pattern column.
#[allow(clippy::collapsible_match)]
pub fn check_file(rel_path: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let toks = lex(src);
    // Comments are handled via raw source lines (R1); the structural walk
    // only sees significant tokens.
    let sig: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let r1 = cfg.rule("safety_comment");
    let r2 = cfg.rule("unsafe_allowlist");
    let r3 = cfg.rule("no_panic");
    let r4 = cfg.rule("no_alloc_hot_path");
    let r2_allowed = path_in(rel_path, r2.list("modules"));
    let r3_applies = path_in(rel_path, r3.list("modules"));

    let mut findings = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut depth: u32 = 0;
    let mut paren_depth: u32 = 0;
    let mut bracket_depth: u32 = 0;
    // Attribute state pending until the next `fn`/`mod` item.
    let mut pending_test = false;
    let mut pending_hot = false;
    let mut pending_fn: Option<String> = None;
    let mut pending_mod = false;

    let mut i = 0;
    while i < sig.len() {
        let t = sig[i];
        let in_test = pending_test || scopes.iter().any(|s| s.is_test);
        let cur_fn = scopes.iter().rev().find_map(|s| s.fn_name.clone());
        let cur_hot = scopes.iter().any(|s| s.hot);

        match &t.kind {
            TokKind::Punct('#') => {
                // Attribute: `#[...]` (outer) or `#![...]` (inner).
                let mut j = i + 1;
                let inner = j < sig.len() && sig[j].is_punct('!');
                if inner {
                    j += 1;
                }
                if j < sig.len() && sig[j].is_punct('[') {
                    let (idents, end) = scan_group(&sig, j);
                    if !inner {
                        let has = |s: &str| idents.iter().any(|id| id == s);
                        if (has("cfg") && has("test") && !has("not"))
                            || idents.first().is_some_and(|id| id == "test")
                        {
                            pending_test = true;
                        }
                        if has("hot_path") {
                            pending_hot = true;
                        }
                    }
                    i = end;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    scopes.push(Scope {
                        open_depth: depth,
                        is_test: in_test,
                        hot: pending_hot || cur_hot,
                        fn_name: Some(name),
                    });
                    pending_hot = false;
                    pending_test = false;
                } else if pending_mod {
                    scopes.push(Scope {
                        open_depth: depth,
                        is_test: in_test,
                        hot: false,
                        fn_name: None,
                    });
                    pending_mod = false;
                    pending_test = false;
                    pending_hot = false;
                }
            }
            TokKind::Punct('}') => {
                if scopes.last().is_some_and(|s| s.open_depth == depth) {
                    scopes.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct('(') => paren_depth += 1,
            TokKind::Punct(')') => paren_depth = paren_depth.saturating_sub(1),
            TokKind::Punct(';') => {
                if paren_depth == 0 && bracket_depth == 0 {
                    // `fn f();` (trait decl) or `mod m;`: the pending item
                    // had no body.
                    pending_fn = None;
                    pending_mod = false;
                    pending_test = false;
                    pending_hot = false;
                }
            }
            TokKind::Ident => match t.text.as_str() {
                "fn" => {
                    if let Some(name) = sig.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending_fn = Some(name.text.clone());
                    }
                }
                "mod" => pending_mod = true,
                "struct" | "enum" | "use" | "type" | "macro_rules" => {
                    // Attributes on non-fn/mod items don't carry over.
                    pending_test = false;
                    pending_hot = false;
                }
                "unsafe" => {
                    // R2: unsafe outside the allowlisted module set.
                    if r2.enabled() && !r2_allowed {
                        findings.push(Finding {
                            rule: "unsafe_allowlist",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "`unsafe` is not permitted in this module (R2); the \
                                 allowlisted set is {:?} — extend `analysis.toml` only \
                                 with a reviewed justification",
                                r2.list("modules")
                            ),
                        });
                    }
                    // R1: SAFETY comment nearby.
                    if r1.enabled()
                        && !allowed(&r1, rel_path, cur_fn.as_deref())
                        && !has_safety_comment(&lines, t.line)
                    {
                        let what = match sig.get(i + 1) {
                            Some(n) if n.is_ident("fn") => "`unsafe fn` without a `# Safety` doc section or `// SAFETY:` comment",
                            Some(n) if n.is_ident("impl") || n.is_ident("trait") => {
                                "`unsafe impl`/`unsafe trait` without a `// SAFETY:` comment"
                            }
                            _ => "unsafe block without a `// SAFETY:` comment",
                        };
                        findings.push(Finding {
                            rule: "safety_comment",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "{what} (R1): document why every precondition of the \
                                 unsafe operation holds at this call site"
                            ),
                        });
                    }
                }
                "unwrap" | "expect" => {
                    if r3.enabled()
                        && r3_applies
                        && !in_test
                        && i > 0
                        && sig[i - 1].is_punct('.')
                        && sig.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && !allowed(&r3, rel_path, cur_fn.as_deref())
                    {
                        findings.push(Finding {
                            rule: "no_panic",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "`.{}()` in hot-path module{} (R3): handle the None/Err \
                                 case or add an `analysis.toml` waiver naming the \
                                 invariant that makes it unreachable",
                                t.text,
                                cur_fn.as_deref().map(|f| format!(" (fn `{f}`)")).unwrap_or_default()
                            ),
                        });
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    if r3.enabled()
                        && r3_applies
                        && !in_test
                        && sig.get(i + 1).is_some_and(|n| n.is_punct('!'))
                        && !allowed(&r3, rel_path, cur_fn.as_deref())
                    {
                        findings.push(Finding {
                            rule: "no_panic",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "`{}!` in hot-path module{} (R3): hot-path code must \
                                 not contain panicking macros",
                                t.text,
                                cur_fn.as_deref().map(|f| format!(" (fn `{f}`)")).unwrap_or_default()
                            ),
                        });
                    }
                }
                _ => {}
            },
            _ => {}
        }

        // R3: division/modulo inside an index expression. `[` counts as
        // indexing when it directly follows an expression tail (identifier,
        // `]` or `)`), excluding keywords that start array literals.
        if t.is_punct('[') {
            bracket_depth += 1;
            let is_index = i > 0
                && match &sig[i - 1].kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&sig[i - 1].text.as_str()),
                    TokKind::Punct(']') | TokKind::Punct(')') => true,
                    _ => false,
                };
            if r3.enabled() && r3_applies && !in_test && is_index {
                let (_, end) = scan_group(&sig, i);
                if let Some(bad) = sig[i..end]
                    .iter()
                    .find(|x| x.is_punct('/') || x.is_punct('%'))
                {
                    if !allowed(&r3, rel_path, cur_fn.as_deref()) {
                        findings.push(Finding {
                            rule: "no_panic",
                            file: rel_path.to_string(),
                            line: bad.line,
                            message: "division/modulo inside an index expression in a \
                                      hot-path module (R3): hoist the quotient into a \
                                      named local so the bounds reasoning is visible \
                                      (and the compiler can lift the div out of the loop)"
                                .to_string(),
                        });
                    }
                }
            }
        }
        if t.is_punct(']') {
            bracket_depth = bracket_depth.saturating_sub(1);
        }

        // R4: heap allocation inside #[hot_path] functions.
        if r4.enabled() && cur_hot && !in_test && !allowed(&r4, rel_path, cur_fn.as_deref()) {
            if let Some(what) = alloc_pattern(&sig, i) {
                findings.push(Finding {
                    rule: "no_alloc_hot_path",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "heap allocation (`{what}`) inside `#[hot_path]` fn `{}` (R4): \
                         preallocate in the constructor or use a fixed-size buffer",
                        cur_fn.as_deref().unwrap_or("?")
                    ),
                });
            }
        }

        i += 1;
    }
    findings
}

/// Scans a bracket group starting at `sig[open]` (must be `[`, `(` or `{`);
/// returns the identifiers inside and the index one past the closing
/// delimiter. All three delimiter kinds nest.
pub(crate) fn scan_group(sig: &[&Token], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    let mut j = open;
    while j < sig.len() {
        match sig[j].kind {
            TokKind::Punct('[') | TokKind::Punct('(') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(']') | TokKind::Punct(')') | TokKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, j + 1);
                }
            }
            TokKind::Ident => idents.push(sig[j].text.clone()),
            _ => {}
        }
        j += 1;
    }
    (idents, j)
}

/// Whether a `// SAFETY:` (or `# Safety` doc) comment sits within the 10
/// lines above `line` or the 2 lines after (SAFETY-inside-block style).
/// Attribute lines between the comment and the `unsafe` keyword are fine —
/// the window just has to contain the comment.
fn has_safety_comment(lines: &[&str], line: u32) -> bool {
    let idx = line as usize - 1; // 0-based line of the unsafe token
    let lo = idx.saturating_sub(10);
    let hi = (idx + 3).min(lines.len());
    lines[lo..hi].iter().any(|l| {
        let c = l.trim_start();
        (c.contains("SAFETY:") && (c.starts_with("//") || c.contains("// SAFETY:")))
            || (c.starts_with("///") && c.contains("# Safety"))
    })
}

/// Heap-allocation pattern starting at `sig[i]`; returns a label for the
/// diagnostic. Matches `Vec::new`, `Vec::with_capacity`, `Box::new`,
/// `String::new/from/with_capacity`, `vec!`, `format!`, `.to_vec()`,
/// `.to_string()`, `.to_owned()`, `.clone()`, `.push()`, `.collect()`.
#[allow(clippy::collapsible_match)]
pub(crate) fn alloc_pattern(sig: &[&Token], i: usize) -> Option<String> {
    let t = sig[i];
    if t.kind != TokKind::Ident {
        return None;
    }
    let nxt = |k: usize| sig.get(i + k);
    match t.text.as_str() {
        "Vec" | "Box" | "String" => {
            if nxt(1).is_some_and(|a| a.is_punct(':'))
                && nxt(2).is_some_and(|a| a.is_punct(':'))
                && nxt(3).is_some_and(|a| {
                    a.kind == TokKind::Ident
                        && matches!(a.text.as_str(), "new" | "with_capacity" | "from")
                })
            {
                return Some(format!("{}::{}", t.text, sig[i + 3].text));
            }
        }
        "vec" | "format" => {
            if nxt(1).is_some_and(|a| a.is_punct('!')) {
                return Some(format!("{}!", t.text));
            }
        }
        "to_vec" | "to_string" | "to_owned" | "clone" | "push" | "collect" => {
            if i > 0 && sig[i - 1].is_punct('.') && nxt(1).is_some_and(|a| a.is_punct('(')) {
                return Some(format!(".{}()", t.text));
            }
        }
        _ => {}
    }
    None
}

/// Whether `rel_path` matches any entry in `modules` (suffix match on
/// `/`-separated paths, so entries can be as precise as needed).
pub(crate) fn path_in(rel_path: &str, modules: &[String]) -> bool {
    modules.iter().any(|m| rel_path == m || rel_path.ends_with(&format!("/{m}")))
}

/// Whether the rule's `allow` list waives findings at this location.
/// Entries: `"file.rs"` (whole file) or `"file.rs::function"`.
pub(crate) fn allowed(
    rule: &crate::config::RuleConfig,
    rel_path: &str,
    cur_fn: Option<&str>,
) -> bool {
    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    rule.list("allow").iter().any(|entry| match entry.split_once("::") {
        Some((f, func)) => {
            (f == file_name || rel_path == f || rel_path.ends_with(&format!("/{f}")))
                && cur_fn == Some(func)
        }
        None => {
            entry == file_name || rel_path == entry.as_str()
                || rel_path.ends_with(&format!("/{entry}"))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(toml: &str) -> Config {
        Config::parse(toml).expect("test config parses")
    }

    #[test]
    fn r1_flags_missing_safety_comment() {
        let src = "fn f() {\n    unsafe { danger() };\n}\n";
        let f = check_file("crates/x/src/l2.rs", src, &cfg("[rules.unsafe_allowlist]\nmodules = [\"l2.rs\"]\n"));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "safety_comment");
    }

    #[test]
    fn r1_accepts_safety_comment_above_attributes() {
        let src = "fn f() {\n    // SAFETY: verified above.\n    #[allow(unsafe_code)]\n    unsafe { danger() };\n}\n";
        let f = check_file("crates/x/src/l2.rs", src, &cfg("[rules.unsafe_allowlist]\nmodules = [\"l2.rs\"]\n"));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r1_accepts_safety_doc_on_unsafe_fn() {
        let src = "/// Does things.\n///\n/// # Safety\n/// Caller upholds X.\nunsafe fn g() {}\n";
        let f = check_file("crates/x/src/l2.rs", src, &cfg("[rules.unsafe_allowlist]\nmodules = [\"l2.rs\"]\n"));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn r2_flags_unsafe_outside_allowlist() {
        let src = "// SAFETY: fine.\nfn f() { unsafe { danger() } }\n";
        let f = check_file("crates/x/src/other.rs", src, &cfg("[rules.unsafe_allowlist]\nmodules = [\"l2.rs\"]\n"));
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "unsafe_allowlist");
    }

    #[test]
    fn r2_ignores_unsafe_in_strings_comments_and_idents() {
        let src = "#![forbid(unsafe_code)]\n// unsafe here\nfn f() { let s = \"unsafe\"; }\n";
        let f = check_file("crates/x/src/other.rs", src, &cfg(""));
        assert!(f.is_empty(), "{f:?}");
    }

    const R3_CFG: &str = "[rules.no_panic]\nmodules = [\"hot.rs\"]\n";

    #[test]
    fn r3_flags_unwrap_expect_panic() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"msg\");\n    panic!(\"boom\");\n}\n";
        let f = check_file("crates/x/src/hot.rs", src, &cfg(R3_CFG));
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "no_panic"));
    }

    #[test]
    fn r3_skips_tests_and_other_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(check_file("crates/x/src/hot.rs", src, &cfg(R3_CFG)).is_empty());
        let src2 = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert!(check_file("crates/x/src/cold.rs", src2, &cfg(R3_CFG)).is_empty());
    }

    #[test]
    fn r3_flags_div_mod_in_index() {
        let src = "fn f(v: &[u8], i: usize, n: usize) -> u8 {\n    v[i % n]\n}\n";
        let f = check_file("crates/x/src/hot.rs", src, &cfg(R3_CFG));
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("index"));
        // Div outside indexing and array literals stay clean.
        let ok = "fn g(a: usize, b: usize) -> [usize; 2] {\n    let q = a / b;\n    [q; 2]\n}\n";
        assert!(check_file("crates/x/src/hot.rs", ok, &cfg(R3_CFG)).is_empty());
    }

    #[test]
    fn r3_allowlist_waives_by_function() {
        let src = "fn good() -> u8 { 1 }\nfn waived(x: Option<u8>) -> u8 { x.expect(\"invariant\") }\n";
        let c = cfg("[rules.no_panic]\nmodules = [\"hot.rs\"]\nallow = [\"hot.rs::waived\"]\n");
        assert!(check_file("crates/x/src/hot.rs", src, &c).is_empty());
        let c2 = cfg(R3_CFG);
        assert_eq!(check_file("crates/x/src/hot.rs", src, &c2).len(), 1);
    }

    #[test]
    fn r4_flags_alloc_only_in_hot_fns() {
        let src = "#[hot_path]\nfn hot() {\n    let v = Vec::new();\n    let s = format!(\"x\");\n    let c = v.clone();\n}\nfn cold() { let v: Vec<u8> = Vec::new(); }\n";
        let f = check_file("crates/x/src/any.rs", src, &cfg(""));
        assert_eq!(f.len(), 3, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "no_alloc_hot_path"));
    }

    #[test]
    fn r4_recognises_qualified_attribute() {
        let src = "#[icp_hot_path::hot_path]\nfn hot() { let b = Box::new(3); }\n";
        let f = check_file("crates/x/src/any.rs", src, &cfg(""));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn r4_closures_inherit_hotness() {
        let src = "#[hot_path]\nfn hot(v: &[u8]) {\n    v.iter().for_each(|x| { let s = x.to_string(); });\n}\n";
        let f = check_file("crates/x/src/any.rs", src, &cfg(""));
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn disabled_rules_report_nothing() {
        let src = "fn f() { unsafe { x() } }\n";
        let c = cfg("[rules.safety_comment]\nenabled = false\n[rules.unsafe_allowlist]\nenabled = false\n");
        assert!(check_file("a.rs", src, &c).is_empty());
    }
}
