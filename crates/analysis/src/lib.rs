//! `icp-analysis`: repo-specific static analysis for the ICP workspace.
//!
//! PR 1 moved the simulator's correctness onto implicit invariants — SoA
//! cache layouts, AVX2 tag scans behind runtime dispatch, occupancy-counter
//! shortcuts. This crate is the machine check that keeps those invariants
//! enforceable as the hot path keeps evolving:
//!
//! * a **lint pass** ([`rules`]) over the whole workspace, run both as a
//!   tier-1 test (`cargo test -p icp-analysis`) and as a binary
//!   (`cargo run -p icp-analysis --bin icp-lint`), enforcing the repo's
//!   unsafe/panic/allocation discipline (rules R1–R4; see [`rules`]);
//! * a **workspace call graph** ([`callgraph`]) rooted at the
//!   `#[deterministic]` / `#[hot_path]` markers from `icp-hot-path`, over
//!   which the **determinism rules** D1–D5 ([`rules_determinism`]) prove the
//!   repo's bit-identity contract statically — no unordered hash iteration,
//!   ambient clocks/thread identity, unordered float reductions, undisciplined
//!   synchronisation, or transitive panic/alloc anywhere a digest-bearing
//!   root can reach;
//! * configuration via `analysis.toml` ([`config`]) with per-rule allow
//!   lists, so every waiver is recorded and reviewable;
//! * a machine-readable JSON report ([`report`]) uploaded as a CI artifact.
//!
//! The runtime half of the story — the partition-invariant sanitizer — lives
//! in `icp-cmp-sim` behind the `sanitize` cargo feature; this crate is the
//! compile-time half. No external parser crates are available in this build
//! environment, so the pass runs on a hand-rolled lexer ([`lexer`]) rather
//! than `syn`; the lexer understands comments, strings and lifetimes, which
//! is what soundness of these rules actually requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod rules_determinism;

use std::path::{Path, PathBuf};

pub use callgraph::CallGraph;
pub use config::Config;
pub use report::AnalysisReport;
pub use rules::{Finding, RULE_NAMES};

/// Directories never descended into, regardless of configuration.
const ALWAYS_EXCLUDED: &[&str] = &["target", ".git"];

/// Recursively collects the workspace's `.rs` files under `root`, skipping
/// `target/`, hidden directories, and the configured exclude prefixes.
/// Paths come back workspace-relative with `/` separators, sorted.
pub fn collect_rust_files(root: &Path, exclude: &[String]) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let rel = rel_str(root, &path);
            let name = entry.file_name().to_string_lossy().into_owned();
            if path.is_dir() {
                if ALWAYS_EXCLUDED.contains(&name.as_str())
                    || name.starts_with('.')
                    || is_excluded(&rel, exclude)
                {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") && !is_excluded(&rel, exclude) {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs every enabled rule over the workspace rooted at `root`: pass one
/// builds the call graph (so obligations propagate across files and crates),
/// pass two applies the per-file rules R1–R4 and the closure-scoped rules
/// D1–D5 to every file.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> std::io::Result<AnalysisReport> {
    let files = collect_rust_files(root, &cfg.exclude)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        sources.push((rel_str(root, path), std::fs::read_to_string(path)?));
    }
    let graph = CallGraph::build(&sources);
    let mut findings = Vec::new();
    for (rel, src) in &sources {
        findings.extend(rules::check_file(rel, src, cfg));
        findings.extend(rules_determinism::check_file(rel, src, cfg, &graph));
    }
    Ok(AnalysisReport {
        root: root.display().to_string(),
        files_scanned: files.len(),
        findings,
    })
}

/// Builds just the workspace call graph (the `icp-lint --closures` path and
/// the self-tests use this directly).
pub fn build_call_graph(root: &Path, cfg: &Config) -> std::io::Result<CallGraph> {
    let files = collect_rust_files(root, &cfg.exclude)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in &files {
        sources.push((rel_str(root, path), std::fs::read_to_string(path)?));
    }
    Ok(CallGraph::build(&sources))
}

/// Workspace-relative `/`-separated path of `path` under `root`.
fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Whether `rel` starts with any exclude prefix.
fn is_excluded(rel: &str, exclude: &[String]) -> bool {
    exclude.iter().any(|e| {
        let e = e.trim_end_matches('/');
        rel == e || rel.starts_with(&format!("{e}/"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusion_is_prefix_based() {
        assert!(is_excluded("a/b/c.rs", &["a/b".to_string()]));
        assert!(is_excluded("a/b", &["a/b/".to_string()]));
        assert!(!is_excluded("a/bc/d.rs", &["a/b".to_string()]));
    }

    #[test]
    fn walk_finds_own_sources_and_skips_fixtures() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files =
            collect_rust_files(root, &["tests/fixtures".to_string()]).expect("walk succeeds");
        let rels: Vec<String> = files.iter().map(|f| rel_str(root, f)).collect();
        assert!(rels.iter().any(|r| r == "src/lib.rs"), "{rels:?}");
        assert!(rels.iter().all(|r| !r.starts_with("tests/fixtures/")), "{rels:?}");
    }
}
