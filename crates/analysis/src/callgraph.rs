//! Workspace call-graph construction over the lexed token stream.
//!
//! The determinism rules (D1–D5, [`crate::rules_determinism`]) need to know
//! which functions can execute *on behalf of* a `#[deterministic]` or
//! `#[hot_path]` root — a transitive property the per-module lists of rules
//! R3/R4 cannot express. This module builds that reachability relation with
//! the same no-`syn` constraint as the rest of the crate: a structural walk
//! over [`crate::lexer`] tokens that extracts every function (free or
//! associated), its marker attributes, and its call sites, then resolves
//! calls by name with deliberately asymmetric precision:
//!
//! * **Bare calls** (`demux_stream(...)`) resolve only to *free* functions —
//!   same file first, then same crate, then workspace-wide (a cross-crate
//!   bare call implies a `use` import the lexer doesn't track).
//! * **Path calls** (`Simulator::new(...)`, `zipf::zeta(...)`) resolve only
//!   when the qualifier names something the workspace defines: an `impl`
//!   type, a module file stem, an `icp_*` crate alias, or
//!   `self`/`Self`/`crate`/`super`. Unknown qualifiers — `std`, `thread`,
//!   `mem`, ... — produce **no edge**, so `std::thread::spawn` can never be
//!   confused with `PipelinedStream::spawn`.
//! * **Method calls** (`.fill_batch(...)`) resolve to every workspace
//!   function of that name that takes `self`, across crates — receiver types
//!   are unknown, so this over-approximates; obligations may reach more
//!   functions than strictly necessary, never fewer, which is the sound
//!   direction for a deny-by-default lint (waivers handle the slack).
//!
//! `#[cfg(test)]` functions are excluded as both callers and callees; the
//! closures are plain BFS from the annotated roots, remembering one example
//! caller per member so diagnostics can show how an obligation arrived.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{lex, TokKind, Token};
use crate::rules::scan_group;

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `name(...)` — unqualified; resolves to free functions only.
    Bare,
    /// `qual::name(...)` — resolves via the qualifying path.
    Path {
        /// Last path segment before the function name (`zipf`, `Instant`).
        qualifier: String,
        /// First segment of the whole path (`std` in `std::thread::spawn`).
        head: String,
    },
    /// `.name(...)` — method syntax; resolves to `self`-taking functions.
    Method,
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Callee name as written.
    pub name: String,
    /// Qualification at the call site.
    pub kind: CallKind,
    /// 1-based source line.
    pub line: u32,
}

/// One function (free or associated) found in the workspace.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Head of the enclosing `impl` type, if any (`Simulator` for
    /// `impl<S: AccessStream> Simulator<S>`).
    pub impl_type: Option<String>,
    /// Workspace-relative `/`-separated file.
    pub file: String,
    /// Owning crate (`cmp-sim` for `crates/cmp-sim/...`, `(root)` for the
    /// top-level package).
    pub crate_name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Inside `#[cfg(test)]` / `#[test]` (excluded from the graph).
    pub is_test: bool,
    /// Takes `self` (method).
    pub has_self: bool,
    /// Directly carries `#[deterministic]`.
    pub det_root: bool,
    /// Directly carries `#[hot_path]`.
    pub hot_root: bool,
    /// Call sites in the body, in source order.
    pub calls: Vec<CallSite>,
}

impl FnInfo {
    /// `Type::name` or bare `name`, for diagnostics.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The rule obligations the closures impose on one `(file, fn)` location.
/// Same-named functions in one file are merged (over-approximation again:
/// the walker cannot tell two `fn merge` in different impls apart).
#[derive(Clone, Debug, Default)]
pub struct Obligation {
    /// Member of the `#[deterministic]` closure.
    pub det: bool,
    /// Member of the `#[hot_path]` closure.
    pub hot: bool,
    /// Directly `#[deterministic]`-marked.
    pub det_root: bool,
    /// Directly `#[hot_path]`-marked.
    pub hot_root: bool,
    /// One caller through which the deterministic obligation arrived
    /// (`None` for roots).
    pub det_via: Option<String>,
    /// One caller through which the hot obligation arrived (`None` for
    /// roots).
    pub hot_via: Option<String>,
}

/// The resolved workspace call graph plus both obligation closures.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// Every extracted function.
    pub fns: Vec<FnInfo>,
    /// Resolved callee indices per function (parallel to `fns`).
    edges: Vec<Vec<usize>>,
    /// Merged obligations keyed by `(file, fn_name)`.
    obligations: BTreeMap<(String, String), Obligation>,
    /// Files containing at least one deterministic-closure function.
    det_files: BTreeSet<String>,
    /// Files containing at least one hot-closure function.
    hot_files: BTreeSet<String>,
}

impl CallGraph {
    /// Builds the graph from `(workspace-relative path, source)` pairs.
    pub fn build(files: &[(String, String)]) -> CallGraph {
        let mut fns: Vec<FnInfo> = Vec::new();
        for (rel, src) in files {
            fns.extend(extract_fns(rel, src));
        }
        let edges = resolve_edges(&fns);
        let (det, det_via) = closure(&fns, &edges, |f| f.det_root);
        let (hot, hot_via) = closure(&fns, &edges, |f| f.hot_root);

        let mut obligations: BTreeMap<(String, String), Obligation> = BTreeMap::new();
        let mut det_files = BTreeSet::new();
        let mut hot_files = BTreeSet::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            if det[i] {
                det_files.insert(f.file.clone());
            }
            if hot[i] {
                hot_files.insert(f.file.clone());
            }
            let o = obligations.entry((f.file.clone(), f.name.clone())).or_default();
            o.det |= det[i];
            o.hot |= hot[i];
            o.det_root |= f.det_root;
            o.hot_root |= f.hot_root;
            if o.det_via.is_none() {
                o.det_via = det_via[i].map(|u| fns[u].qualified());
            }
            if o.hot_via.is_none() {
                o.hot_via = hot_via[i].map(|u| fns[u].qualified());
            }
        }
        CallGraph { fns, edges, obligations, det_files, hot_files }
    }

    /// The obligations at `(file, fn_name)`; default (none) when unknown.
    pub fn obligation(&self, file: &str, fn_name: &str) -> Obligation {
        self.obligations
            .get(&(file.to_string(), fn_name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// Whether `file` contains any deterministic-closure function — the
    /// scope at which D1 also checks type positions (struct fields,
    /// signatures), since that state is plumbing for those functions.
    pub fn file_has_det(&self, file: &str) -> bool {
        self.det_files.contains(file)
    }

    /// Whether `file` contains any hot-closure function (D5's alloc half
    /// has work to do there).
    pub fn file_has_hot(&self, file: &str) -> bool {
        self.hot_files.contains(file)
    }

    /// `file::Type::fn` for every deterministic-closure member, sorted.
    pub fn det_closure_names(&self) -> Vec<String> {
        self.closure_names(|o| o.det)
    }

    /// `file::Type::fn` for every hot-closure member, sorted.
    pub fn hot_closure_names(&self) -> Vec<String> {
        self.closure_names(|o| o.hot)
    }

    fn closure_names(&self, pick: impl Fn(&Obligation) -> bool) -> Vec<String> {
        let mut out = BTreeSet::new();
        for f in self.fns.iter().filter(|f| !f.is_test) {
            if pick(&self.obligation(&f.file, &f.name)) {
                out.insert(format!("{}::{}", f.file, f.qualified()));
            }
        }
        out.into_iter().collect()
    }

    /// Resolved callee indices of `fns[i]` (for tests).
    pub fn callees(&self, i: usize) -> &[usize] {
        &self.edges[i]
    }
}

/// BFS reachability from `root`-flagged functions; returns membership plus
/// one example predecessor per member (`None` for roots).
fn closure(
    fns: &[FnInfo],
    edges: &[Vec<usize>],
    root: impl Fn(&FnInfo) -> bool,
) -> (Vec<bool>, Vec<Option<usize>>) {
    let n = fns.len();
    let mut inc = vec![false; n];
    let mut via: Vec<Option<usize>> = vec![None; n];
    let mut queue = VecDeque::new();
    for (i, f) in fns.iter().enumerate() {
        if !f.is_test && root(f) {
            inc[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &edges[u] {
            if !inc[v] {
                inc[v] = true;
                via[v] = Some(u);
                queue.push_back(v);
            }
        }
    }
    (inc, via)
}

/// Identifiers that look like calls syntactically but never are (keywords,
/// `Option`/`Result` variant constructors).
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "in", "as", "move", "fn", "unsafe",
    "where", "impl", "let", "else", "break", "continue", "await", "mut", "ref", "dyn", "box",
    "true", "false", "union", "pub", "use", "Some", "None", "Ok", "Err",
];

/// Crate name from a workspace-relative path.
fn crate_of(file: &str) -> String {
    let mut parts = file.split('/');
    if parts.next() == Some("crates") {
        if let Some(c) = parts.next() {
            return c.to_string();
        }
    }
    "(root)".to_string()
}

/// File stem (`zipf` for `crates/numeric/src/zipf.rs`).
fn stem_of(file: &str) -> &str {
    let name = file.rsplit('/').next().unwrap_or(file);
    name.strip_suffix(".rs").unwrap_or(name)
}

/// Scope kinds the extraction walker tracks.
enum ScopeKind {
    /// Function body; index into the `fns` vec.
    Fn(usize),
    /// `impl` block with its type head.
    Impl(Option<String>),
    /// `mod` block.
    Mod,
}

struct CgScope {
    open_depth: u32,
    is_test: bool,
    kind: ScopeKind,
}

/// Extracts every function in one file, with attributes and call sites.
fn extract_fns(file: &str, src: &str) -> Vec<FnInfo> {
    let toks = lex(src);
    let sig: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let crate_name = crate_of(file);

    let mut fns: Vec<FnInfo> = Vec::new();
    let mut scopes: Vec<CgScope> = Vec::new();
    let mut depth: u32 = 0;
    let mut paren_depth: u32 = 0;
    let mut bracket_depth: u32 = 0;
    let mut pending_test = false;
    let mut pending_det = false;
    let mut pending_hot = false;
    let mut pending_fn: Option<FnInfo> = None;
    let mut pending_impl: Option<Option<String>> = None;
    let mut pending_mod = false;

    let mut i = 0;
    while i < sig.len() {
        let t = sig[i];
        let in_test = pending_test || scopes.iter().any(|s| s.is_test);

        match &t.kind {
            TokKind::Punct('#') => {
                let mut j = i + 1;
                let inner = j < sig.len() && sig[j].is_punct('!');
                if inner {
                    j += 1;
                }
                if j < sig.len() && sig[j].is_punct('[') {
                    let (idents, end) = scan_group(&sig, j);
                    if !inner {
                        let has = |s: &str| idents.iter().any(|id| id == s);
                        if (has("cfg") && has("test") && !has("not"))
                            || idents.first().is_some_and(|id| id == "test")
                        {
                            pending_test = true;
                        }
                        if has("hot_path") {
                            pending_hot = true;
                        }
                        if has("deterministic") {
                            pending_det = true;
                        }
                    }
                    i = end;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                depth += 1;
                if let Some(mut f) = pending_fn.take() {
                    f.is_test = f.is_test || in_test;
                    let test = f.is_test;
                    let idx = fns.len();
                    fns.push(f);
                    scopes.push(CgScope { open_depth: depth, is_test: test, kind: ScopeKind::Fn(idx) });
                    pending_test = false;
                } else if let Some(ty) = pending_impl.take() {
                    scopes.push(CgScope { open_depth: depth, is_test: in_test, kind: ScopeKind::Impl(ty) });
                    pending_test = false;
                } else if pending_mod {
                    scopes.push(CgScope { open_depth: depth, is_test: in_test, kind: ScopeKind::Mod });
                    pending_mod = false;
                    pending_test = false;
                    pending_det = false;
                    pending_hot = false;
                }
            }
            TokKind::Punct('}') => {
                if scopes.last().is_some_and(|s| s.open_depth == depth) {
                    scopes.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct('(') => paren_depth += 1,
            TokKind::Punct(')') => paren_depth = paren_depth.saturating_sub(1),
            TokKind::Punct(';') => {
                if paren_depth == 0 && bracket_depth == 0 {
                    // Trait method declaration / `mod m;`: no body follows.
                    pending_fn = None;
                    pending_mod = false;
                    pending_impl = None;
                    pending_test = false;
                    pending_det = false;
                    pending_hot = false;
                }
            }
            TokKind::Punct('[') => bracket_depth += 1,
            TokKind::Punct(']') => bracket_depth = bracket_depth.saturating_sub(1),
            TokKind::Ident => match t.text.as_str() {
                "fn" => {
                    if let Some(name) = sig.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        let impl_type = scopes.iter().rev().find_map(|s| match &s.kind {
                            ScopeKind::Impl(ty) => Some(ty.clone()),
                            _ => None,
                        });
                        pending_fn = Some(FnInfo {
                            name: name.text.clone(),
                            impl_type: impl_type.flatten(),
                            file: file.to_string(),
                            crate_name: crate_name.clone(),
                            line: t.line,
                            is_test: in_test,
                            has_self: fn_has_self(&sig, i + 1),
                            det_root: pending_det,
                            hot_root: pending_hot,
                            calls: Vec::new(),
                        });
                        pending_det = false;
                        pending_hot = false;
                    }
                }
                "mod" => pending_mod = true,
                "impl" if pending_fn.is_none() => {
                    pending_impl = Some(parse_impl_type(&sig, i));
                }
                "struct" | "enum" | "trait" | "type" | "macro_rules" => {
                    pending_test = false;
                    pending_det = false;
                    pending_hot = false;
                }
                _ => {
                    // Call sites: attributed to the innermost enclosing fn,
                    // skipped inside signatures and #[cfg(test)] regions.
                    if pending_fn.is_none() && !in_test {
                        let cur = scopes.iter().rev().find_map(|s| match s.kind {
                            ScopeKind::Fn(idx) => Some(idx),
                            _ => None,
                        });
                        if let Some(idx) = cur {
                            if let Some(site) = call_site(&sig, i) {
                                fns[idx].calls.push(site);
                            }
                        }
                    }
                }
            },
            _ => {}
        }
        i += 1;
    }
    fns
}

/// If `sig[i]` is the callee identifier of a call expression, classify it.
fn call_site(sig: &[&Token], i: usize) -> Option<CallSite> {
    let t = sig[i];
    if CALL_KEYWORDS.contains(&t.text.as_str()) {
        return None;
    }
    // Macro invocation, not a call.
    if sig.get(i + 1).is_some_and(|n| n.is_punct('!')) {
        return None;
    }
    // `name(` directly, or turbofish `name::<T>(`.
    let direct = sig.get(i + 1).is_some_and(|n| n.is_punct('('));
    let turbofish = !direct
        && sig.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && sig.get(i + 2).is_some_and(|n| n.is_punct(':'))
        && sig.get(i + 3).is_some_and(|n| n.is_punct('<'))
        && {
            let j = skip_angles(sig, i + 3);
            sig.get(j).is_some_and(|n| n.is_punct('('))
        };
    if !direct && !turbofish {
        return None;
    }

    let kind = if i > 0 && sig[i - 1].is_punct('.') {
        CallKind::Method
    } else if i >= 2 && sig[i - 1].is_punct(':') && sig[i - 2].is_punct(':') {
        // Walk the qualifying path backwards: `a::b::name(` yields
        // qualifier `b`, head `a`. A non-ident path element (`<T as X>::f`,
        // `Vec::<u8>::new`) makes the path unresolvable — no edge.
        let mut segs: Vec<String> = Vec::new();
        let mut k = i;
        while k >= 3 && sig[k - 1].is_punct(':') && sig[k - 2].is_punct(':') {
            if sig[k - 3].kind == TokKind::Ident {
                segs.push(sig[k - 3].text.clone());
                k -= 3;
            } else {
                segs.clear();
                break;
            }
        }
        match (segs.first(), segs.last()) {
            (Some(q), Some(h)) => CallKind::Path { qualifier: q.clone(), head: h.clone() },
            _ => CallKind::Path { qualifier: String::new(), head: String::new() },
        }
    } else {
        CallKind::Bare
    };
    Some(CallSite { name: t.text.clone(), kind, line: t.line })
}

/// Index one past a balanced `<...>` group starting at `open`. A `>` that is
/// part of `->` does not close the group.
fn skip_angles(sig: &[&Token], open: usize) -> usize {
    let mut d = 0i32;
    let mut j = open;
    while j < sig.len() {
        if sig[j].is_punct('<') {
            d += 1;
        } else if sig[j].is_punct('>') && !(j > 0 && sig[j - 1].is_punct('-')) {
            d -= 1;
            if d == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    j
}

/// Whether the parameter list of the `fn` whose name sits at `name_idx`
/// starts with a `self` receiver.
fn fn_has_self(sig: &[&Token], name_idx: usize) -> bool {
    // Find the parameter `(`, skipping the generic parameter list.
    let mut j = name_idx + 1;
    let mut angle = 0i32;
    while j < sig.len() {
        if sig[j].is_punct('<') {
            angle += 1;
        } else if sig[j].is_punct('>') && !(j > 0 && sig[j - 1].is_punct('-')) {
            angle -= 1;
        } else if sig[j].is_punct('(') && angle <= 0 {
            break;
        } else if sig[j].is_punct('{') || sig[j].is_punct(';') {
            return false;
        }
        j += 1;
    }
    // Scan the first parameter (up to the first `,` at group depth 1).
    let mut d = 0i32;
    while j < sig.len() {
        match sig[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => d += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => {
                d -= 1;
                if d == 0 {
                    return false;
                }
            }
            TokKind::Punct(',') if d == 1 => return false,
            TokKind::Ident if d == 1 && sig[j].text == "self" => return true,
            _ => {}
        }
        j += 1;
    }
    false
}

/// The type head of an `impl` header at `sig[i]`: the last path segment of
/// the implemented-for type (`Finding` for `impl fmt::Display for Finding`,
/// `Simulator` for `impl<S: AccessStream> Simulator<S>`).
fn parse_impl_type(sig: &[&Token], i: usize) -> Option<String> {
    let mut j = i + 1;
    if j < sig.len() && sig[j].is_punct('<') {
        j = skip_angles(sig, j);
    }
    let (first, after) = read_type_path(sig, j);
    if sig.get(after).is_some_and(|t| t.is_ident("for")) {
        let (second, _) = read_type_path(sig, after + 1);
        second
    } else {
        first
    }
}

/// Reads a type path (`a::b::C<T>`), returning its last ident segment and
/// the index just past it. Leading `&`/`mut`/`dyn`/lifetimes are skipped.
fn read_type_path(sig: &[&Token], mut j: usize) -> (Option<String>, usize) {
    while j < sig.len()
        && (sig[j].is_punct('&')
            || sig[j].kind == TokKind::Lifetime
            || sig[j].is_ident("dyn")
            || sig[j].is_ident("mut"))
    {
        j += 1;
    }
    let mut last = None;
    while j < sig.len() {
        if sig[j].kind == TokKind::Ident && !sig[j].is_ident("for") && !sig[j].is_ident("where") {
            last = Some(sig[j].text.clone());
            j += 1;
            if j < sig.len() && sig[j].is_punct('<') {
                j = skip_angles(sig, j);
            }
            if j + 1 < sig.len() && sig[j].is_punct(':') && sig[j + 1].is_punct(':') {
                j += 2;
                continue;
            }
        }
        break;
    }
    (last, j)
}

/// Resolves every call site to workspace function indices.
fn resolve_edges(fns: &[FnInfo]) -> Vec<Vec<usize>> {
    // Indices over non-test functions.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_impl: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut impl_types: BTreeSet<&str> = BTreeSet::new();
    let mut stems: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        by_name.entry(&f.name).or_default().push(i);
        if let Some(ty) = &f.impl_type {
            by_impl.entry((ty.as_str(), &f.name)).or_default().push(i);
            impl_types.insert(ty.as_str());
        }
        stems.entry(stem_of(&f.file)).or_default().push(i);
    }

    let free = |i: &usize| fns[*i].impl_type.is_none() && !fns[*i].has_self;

    let mut edges: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    for (ci, caller) in fns.iter().enumerate() {
        if caller.is_test {
            continue;
        }
        let mut out: BTreeSet<usize> = BTreeSet::new();
        for site in &caller.calls {
            let named: &[usize] = by_name.get(site.name.as_str()).map_or(&[], |v| v);
            match &site.kind {
                CallKind::Bare => {
                    // Free functions only: same file, else same crate, else
                    // anywhere (a cross-crate bare call implies a `use`).
                    let cands: Vec<usize> = named.iter().copied().filter(|i| free(i)).collect();
                    let same_file: Vec<usize> =
                        cands.iter().copied().filter(|&i| fns[i].file == caller.file).collect();
                    let same_crate: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| fns[i].crate_name == caller.crate_name)
                        .collect();
                    let pick = if !same_file.is_empty() {
                        same_file
                    } else if !same_crate.is_empty() {
                        same_crate
                    } else {
                        cands
                    };
                    out.extend(pick);
                }
                CallKind::Method => {
                    // Receiver type unknown: every `self`-taking fn of this
                    // name is a possible callee, but same-crate candidates
                    // shadow cross-crate ones — common method names (`add`,
                    // `observe`, `merge`) otherwise wire unrelated crates
                    // together. Cross-crate edges survive whenever the name
                    // is locally unique, which covers the trait-impl calls
                    // the closures actually need (`fill_batch` et al. are
                    // additionally rooted by their own markers).
                    let cands: Vec<usize> =
                        named.iter().copied().filter(|&i| fns[i].has_self).collect();
                    let same_crate: Vec<usize> = cands
                        .iter()
                        .copied()
                        .filter(|&i| fns[i].crate_name == caller.crate_name)
                        .collect();
                    out.extend(if same_crate.is_empty() { cands } else { same_crate });
                }
                CallKind::Path { qualifier, head } => {
                    if qualifier.is_empty() || matches!(head.as_str(), "std" | "core" | "alloc") {
                        continue;
                    }
                    if qualifier == "Self" {
                        if let Some(ty) = &caller.impl_type {
                            if let Some(v) = by_impl.get(&(ty.as_str(), site.name.as_str())) {
                                out.extend(v.iter().copied());
                            }
                        }
                    } else if matches!(qualifier.as_str(), "crate" | "super" | "self") {
                        out.extend(
                            named
                                .iter()
                                .copied()
                                .filter(|i| free(i) && fns[*i].crate_name == caller.crate_name),
                        );
                    } else if impl_types.contains(qualifier.as_str()) {
                        if let Some(v) = by_impl.get(&(qualifier.as_str(), site.name.as_str())) {
                            out.extend(v.iter().copied());
                        }
                    } else if let Some(alias) = qualifier.strip_prefix("icp_") {
                        let krate = alias.replace('_', "-");
                        out.extend(named.iter().copied().filter(|i| {
                            free(i)
                                && (fns[*i].crate_name == krate || fns[*i].crate_name == alias)
                        }));
                    } else if let Some(v) = stems.get(qualifier.as_str()) {
                        // Module file stem (`zipf::zeta(...)`).
                        let in_stem: BTreeSet<usize> = v.iter().copied().collect();
                        out.extend(
                            named.iter().copied().filter(|i| free(i) && in_stem.contains(i)),
                        );
                    }
                    // Any other qualifier (std modules like `thread`, `mem`,
                    // external types): no edge.
                }
            }
        }
        edges[ci] = out.into_iter().collect();
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let owned: Vec<(String, String)> =
            files.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        CallGraph::build(&owned)
    }

    #[test]
    fn extracts_fns_with_attrs_impl_types_and_self() {
        let g = graph(&[(
            "crates/x/src/a.rs",
            "struct S;\n\
             impl S {\n    #[deterministic]\n    pub fn run(&mut self, n: u32) -> u32 { helper(n) }\n\
             \n    fn assoc(n: u32) -> u32 { n }\n}\n\
             #[hot_path]\nfn helper(n: u32) -> u32 { n + 1 }\n",
        )]);
        let run = g.fns.iter().find(|f| f.name == "run").expect("run found");
        assert_eq!(run.impl_type.as_deref(), Some("S"));
        assert!(run.has_self && run.det_root && !run.hot_root);
        let assoc = g.fns.iter().find(|f| f.name == "assoc").expect("assoc found");
        assert!(!assoc.has_self);
        let helper = g.fns.iter().find(|f| f.name == "helper").expect("helper found");
        assert!(helper.hot_root && !helper.has_self && helper.impl_type.is_none());
    }

    #[test]
    fn trait_impl_attributes_to_the_implementing_type() {
        let g = graph(&[(
            "crates/x/src/a.rs",
            "impl std::fmt::Display for Wide<'_> {\n    fn fmt(&self) -> u32 { 0 }\n}\n\
             impl<S: Tr> Gen<S> {\n    fn go(&self) {}\n}\n",
        )]);
        assert_eq!(g.fns[0].impl_type.as_deref(), Some("Wide"));
        assert_eq!(g.fns[1].impl_type.as_deref(), Some("Gen"));
    }

    #[test]
    fn obligations_propagate_two_hops_and_skip_std_paths() {
        let g = graph(&[(
            "crates/x/src/a.rs",
            "#[deterministic]\nfn root() { mid(); std::thread::spawn(|| {}); }\n\
             fn mid() { leaf(); }\nfn leaf() {}\nfn spawn() {}\nfn unrelated() {}\n",
        )]);
        assert!(g.obligation("crates/x/src/a.rs", "root").det_root);
        assert!(g.obligation("crates/x/src/a.rs", "mid").det);
        let leaf = g.obligation("crates/x/src/a.rs", "leaf");
        assert!(leaf.det, "two-hop propagation");
        assert_eq!(leaf.det_via.as_deref(), Some("mid"));
        // `std::thread::spawn` must not resolve to the local free `spawn`.
        assert!(!g.obligation("crates/x/src/a.rs", "spawn").det);
        assert!(!g.obligation("crates/x/src/a.rs", "unrelated").det);
    }

    #[test]
    fn methods_resolve_cross_crate_to_self_takers_only() {
        let g = graph(&[
            (
                "crates/a/src/sim.rs",
                "struct Sim;\nimpl Sim {\n    #[deterministic]\n    fn drive(&mut self, s: &mut St) { s.fill_batch(); }\n}\n",
            ),
            (
                "crates/b/src/gen.rs",
                "struct St;\nimpl St {\n    pub fn fill_batch(&mut self) {}\n    fn fill_batch_free() {}\n}\n\
                 fn fill_batch() {}\n",
            ),
        ]);
        assert!(g.obligation("crates/b/src/gen.rs", "fill_batch").det);
        // The free fn shares the name but is merged under the same key;
        // the non-self assoc fn is untouched.
        assert!(!g.obligation("crates/b/src/gen.rs", "fill_batch_free").det);
    }

    #[test]
    fn path_calls_resolve_via_impl_type_stem_and_crate_alias() {
        let g = graph(&[
            (
                "crates/a/src/shard.rs",
                "#[deterministic]\nfn merge() {\n    Acc::combine();\n    zeta::table();\n    icp_numeric::interp();\n}\n",
            ),
            (
                "crates/b/src/acc.rs",
                "struct Acc;\nimpl Acc {\n    fn combine() {}\n}\n",
            ),
            ("crates/numeric/src/zeta.rs", "pub fn table() {}\npub fn interp() {}\n"),
        ]);
        assert!(g.obligation("crates/b/src/acc.rs", "combine").det);
        assert!(g.obligation("crates/numeric/src/zeta.rs", "table").det);
        assert!(g.obligation("crates/numeric/src/zeta.rs", "interp").det);
    }

    #[test]
    fn test_fns_are_outside_the_graph() {
        let g = graph(&[(
            "crates/x/src/a.rs",
            "#[deterministic]\nfn root() { helper(); }\nfn helper() {}\n\
             #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { super::root(); victim(); }\n    fn victim() {}\n}\n",
        )]);
        assert!(g.obligation("crates/x/src/a.rs", "helper").det);
        assert!(!g.obligation("crates/x/src/a.rs", "victim").det);
        assert!(g.det_closure_names().iter().all(|n| !n.contains("victim")));
    }

    #[test]
    fn hot_closure_is_separate_and_file_has_det_tracks_files() {
        let g = graph(&[(
            "crates/x/src/a.rs",
            "#[hot_path]\nfn hot() { shared(); }\n#[deterministic]\nfn det() {}\nfn shared() {}\n",
        )]);
        let shared = g.obligation("crates/x/src/a.rs", "shared");
        assert!(shared.hot && !shared.det);
        assert!(g.file_has_det("crates/x/src/a.rs"));
        assert!(!g.file_has_det("crates/x/src/b.rs"));
    }

    #[test]
    fn turbofish_and_bare_resolution_prefer_same_file() {
        let g = graph(&[
            (
                "crates/x/src/a.rs",
                "#[deterministic]\nfn root() { pack::<u32>(); }\nfn pack() {}\n",
            ),
            ("crates/y/src/b.rs", "fn pack() {}\n"),
        ]);
        assert!(g.obligation("crates/x/src/a.rs", "pack").det);
        assert!(!g.obligation("crates/y/src/b.rs", "pack").det, "same-file wins");
    }
}
