//! The determinism rules (D1–D5) over the workspace call graph.
//!
//! Where R1–R4 ([`crate::rules`]) are per-file, these rules are scoped by
//! the transitive closures of [`crate::callgraph`]: a function is checked
//! not because its module is on a list, but because the graph proves a
//! `#[deterministic]` or `#[hot_path]` root can reach it. The contract they
//! enforce is the repo's bit-identity promise — every parallel / packed /
//! cached execution path produces digests identical to the serial reference:
//!
//! * **D1 `det_hash_container`** — no `HashMap`/`HashSet` where a
//!   deterministic-closure function can see it: iteration order varies
//!   per-process (`RandomState`), so anything it feeds is nondeterministic.
//!   Checked in closure-function bodies *and* in type positions (fields,
//!   signatures) of files containing closure functions. Use `BTreeMap`/
//!   `BTreeSet` or collect-and-sort.
//! * **D2 `det_ambient`** — no ambient nondeterminism in the closure:
//!   `Instant::`/`SystemTime` clocks, `thread::current` identity,
//!   `available_parallelism` host sizing. Timing/host-sizing functions
//!   (`perf.rs` wall-clock, `ShardedSimulator::auto`,
//!   `PipelinedStream::spawn`'s inline fallback) carry reviewed waivers.
//! * **D3 `det_float_order`** — no float reduction (`.sum()`, `.product()`,
//!   `.fold()`, `.reduce()` with `f32`/`f64` in the same statement) in the
//!   closure unless an `// ORDER:` comment states why the iteration order
//!   is fixed. Float addition is non-associative; a shard-merge that folds
//!   in shard order is fine, one that folds over an unordered source is not.
//! * **D4 `det_sync`** — synchronisation discipline in the listed
//!   concurrency modules (`shard.rs`, `pipeline.rs`): no `Mutex`/`RwLock`/
//!   `Condvar`, no `Atomic*`/`Relaxed` counters, no detached
//!   `thread::spawn` (scoped `scope.spawn` + channels are the sanctioned
//!   idiom: results cross an ordered channel or a join, never a data race).
//! * **D5 `det_transitive`** — the call-graph replacement for per-module
//!   R3/R4 lists: panic patterns in any deterministic-closure function whose
//!   file is *not* already an R3 module, and allocation patterns in
//!   hot-closure functions that are not themselves `#[hot_path]`-marked
//!   (R4 covers the marked roots).
//!
//! Waivers use the same `analysis.toml` `allow` syntax as R1–R4
//! (`"file.rs::function"` / `"file.rs"`), one reviewed entry per exception.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::config::Config;
use crate::lexer::{lex, TokKind, Token};
use crate::rules::{
    allowed, alloc_pattern, path_in, scan_group, Finding, NON_INDEX_KEYWORDS,
};

/// Names of the determinism rules (a subset of [`crate::rules::RULE_NAMES`]).
pub const DET_RULE_NAMES: &[&str] =
    &["det_hash_container", "det_ambient", "det_float_order", "det_sync", "det_transitive"];

/// Scope tracked by the walker: obligations are resolved once per function
/// scope and inherited by closures within.
#[derive(Clone, Debug)]
struct DScope {
    open_depth: u32,
    is_test: bool,
    fn_name: Option<String>,
    /// Function is in the deterministic closure.
    det: bool,
    /// Function is in the hot closure.
    hot: bool,
    /// Function directly carries `#[hot_path]` (R4's jurisdiction).
    hot_root: bool,
}

/// Runs D1–D5 over one file, using `graph` for closure membership.
/// `rel_path` is the workspace-relative path (matching the graph's keys).
pub fn check_file(rel_path: &str, src: &str, cfg: &Config, graph: &CallGraph) -> Vec<Finding> {
    let d1 = cfg.rule("det_hash_container");
    let d2 = cfg.rule("det_ambient");
    let d3 = cfg.rule("det_float_order");
    let d4 = cfg.rule("det_sync");
    let d5 = cfg.rule("det_transitive");
    let d4_applies = d4.enabled() && path_in(rel_path, d4.list("modules"));
    let r3_covers = path_in(rel_path, cfg.rule("no_panic").list("modules"));
    let file_det = graph.file_has_det(rel_path);
    let file_hot = graph.file_has_hot(rel_path);

    // Nothing in this file can produce a finding: skip the walk.
    if !file_det && !file_hot && !d4_applies {
        return Vec::new();
    }

    let lines: Vec<&str> = src.lines().collect();
    let toks = lex(src);
    let sig: Vec<&Token> = toks
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();

    let mut findings = Vec::new();
    let mut scopes: Vec<DScope> = Vec::new();
    let mut depth: u32 = 0;
    let mut paren_depth: u32 = 0;
    let mut bracket_depth: u32 = 0;
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;
    let mut pending_mod = false;
    // Dedup sets so one offending name yields one finding per line (type
    // positions repeat idents heavily; fixtures assert exact counts).
    let mut seen_d1: BTreeSet<(u32, String)> = BTreeSet::new();
    let mut seen_d4: BTreeSet<(u32, String)> = BTreeSet::new();

    let mut i = 0;
    while i < sig.len() {
        let t = sig[i];
        let in_test = pending_test || scopes.iter().any(|s| s.is_test);
        let cur_fn = scopes.iter().rev().find_map(|s| s.fn_name.clone());
        let cur_det = scopes.iter().any(|s| s.det);
        let cur_hot = scopes.iter().any(|s| s.hot);
        let cur_hot_root = scopes.iter().any(|s| s.hot_root);

        match &t.kind {
            TokKind::Punct('#') => {
                let mut j = i + 1;
                let inner = j < sig.len() && sig[j].is_punct('!');
                if inner {
                    j += 1;
                }
                if j < sig.len() && sig[j].is_punct('[') {
                    let (idents, end) = scan_group(&sig, j);
                    if !inner {
                        let has = |s: &str| idents.iter().any(|id| id == s);
                        if (has("cfg") && has("test") && !has("not"))
                            || idents.first().is_some_and(|id| id == "test")
                        {
                            pending_test = true;
                        }
                    }
                    i = end;
                    continue;
                }
            }
            TokKind::Punct('{') => {
                depth += 1;
                if let Some(name) = pending_fn.take() {
                    let o = graph.obligation(rel_path, &name);
                    scopes.push(DScope {
                        open_depth: depth,
                        is_test: in_test,
                        det: o.det || cur_det,
                        hot: o.hot || cur_hot,
                        hot_root: o.hot_root,
                        fn_name: Some(name),
                    });
                    pending_test = false;
                } else if pending_mod {
                    scopes.push(DScope {
                        open_depth: depth,
                        is_test: in_test,
                        det: false,
                        hot: false,
                        hot_root: false,
                        fn_name: None,
                    });
                    pending_mod = false;
                    pending_test = false;
                }
            }
            TokKind::Punct('}') => {
                if scopes.last().is_some_and(|s| s.open_depth == depth) {
                    scopes.pop();
                }
                depth = depth.saturating_sub(1);
            }
            TokKind::Punct('(') => paren_depth += 1,
            TokKind::Punct(')') => paren_depth = paren_depth.saturating_sub(1),
            TokKind::Punct(';') => {
                if paren_depth == 0 && bracket_depth == 0 {
                    pending_fn = None;
                    pending_mod = false;
                    pending_test = false;
                }
            }
            TokKind::Punct('[') => bracket_depth += 1,
            TokKind::Punct(']') => bracket_depth = bracket_depth.saturating_sub(1),
            TokKind::Ident => match t.text.as_str() {
                "fn" => {
                    if let Some(name) = sig.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                        pending_fn = Some(name.text.clone());
                    }
                }
                "mod" => pending_mod = true,
                "struct" | "enum" | "use" | "type" | "macro_rules" => {
                    pending_test = false;
                }
                // ---- D1: HashMap/HashSet where the closure can see it ----
                "HashMap" | "HashSet" => {
                    // Inside a closure fn, or in any non-test type position
                    // of a file that hosts closure fns (struct fields and
                    // signatures are state those fns read and write). `use`
                    // lines fall in the latter bucket deliberately: the
                    // import is what brings the container in.
                    let in_scope = d1.enabled()
                        && file_det
                        && !in_test
                        && (cur_det || cur_fn.is_none() || pending_fn.is_some());
                    if in_scope
                        && !allowed(&d1, rel_path, cur_fn.as_deref())
                        && seen_d1.insert((t.line, t.text.clone()))
                    {
                        findings.push(Finding {
                            rule: "det_hash_container",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "`{}` {} (D1): RandomState iteration order differs per \
                                 process, so anything it feeds loses bit-identity — use \
                                 the BTree equivalent or sort before iterating{}",
                                t.text,
                                d1_position(cur_fn.as_deref(), cur_det),
                                via_note(graph, rel_path, cur_fn.as_deref()),
                            ),
                        });
                    }
                }
                // ---- D2: ambient nondeterminism in the closure ----
                "Instant" | "SystemTime" | "available_parallelism" | "thread" => {
                    let pat: Option<&str> = match t.text.as_str() {
                        "Instant" => (sig.get(i + 1).is_some_and(|n| n.is_punct(':'))
                            && sig.get(i + 2).is_some_and(|n| n.is_punct(':')))
                        .then_some("Instant::now"),
                        "SystemTime" => Some("SystemTime"),
                        "available_parallelism" => Some("available_parallelism"),
                        "thread" => (sig.get(i + 1).is_some_and(|n| n.is_punct(':'))
                            && sig.get(i + 2).is_some_and(|n| n.is_punct(':'))
                            && sig.get(i + 3).is_some_and(|n| n.is_ident("current")))
                        .then_some("thread::current"),
                        _ => None,
                    };
                    if let Some(what) = pat {
                        if d2.enabled()
                            && cur_det
                            && !in_test
                            && !allowed(&d2, rel_path, cur_fn.as_deref())
                        {
                            findings.push(Finding {
                                rule: "det_ambient",
                                file: rel_path.to_string(),
                                line: t.line,
                                message: format!(
                                    "`{what}` in deterministic-closure fn `{}` (D2): \
                                     wall-clock, thread identity and host parallelism \
                                     change between runs — thread sim time through \
                                     explicit state, or add a reviewed waiver for \
                                     timing/host-sizing functions{}",
                                    cur_fn.as_deref().unwrap_or("?"),
                                    via_note(graph, rel_path, cur_fn.as_deref()),
                                ),
                            });
                        }
                    }
                }
                // ---- D3: float reductions without a fixed-order note ----
                "sum" | "product" | "fold" | "reduce" => {
                    if d3.enabled()
                        && cur_det
                        && !in_test
                        && i > 0
                        && sig[i - 1].is_punct('.')
                        && is_call_head(&sig, i)
                        && stmt_window_has_float(&sig, i)
                        && !has_order_comment(&lines, t.line)
                        && !allowed(&d3, rel_path, cur_fn.as_deref())
                    {
                        findings.push(Finding {
                            rule: "det_float_order",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "float `.{}()` in deterministic-closure fn `{}` (D3): \
                                 float addition is non-associative, so the reduction \
                                 order must be fixed — reduce in shard/index order and \
                                 state it in an `// ORDER:` comment, or add a waiver",
                                t.text,
                                cur_fn.as_deref().unwrap_or("?"),
                            ),
                        });
                    }
                }
                // ---- D5 (panic half): transitive no-panic ----
                "unwrap" | "expect" => {
                    if d5.enabled()
                        && cur_det
                        && !r3_covers
                        && !in_test
                        && i > 0
                        && sig[i - 1].is_punct('.')
                        && sig.get(i + 1).is_some_and(|n| n.is_punct('('))
                        && !allowed(&d5, rel_path, cur_fn.as_deref())
                    {
                        findings.push(Finding {
                            rule: "det_transitive",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "`.{}()` in fn `{}`, reachable from a #[deterministic] \
                                 root (D5): a panic mid-merge tears the digest state — \
                                 handle the None/Err case or waive with the invariant \
                                 that makes it unreachable{}",
                                t.text,
                                cur_fn.as_deref().unwrap_or("?"),
                                via_note(graph, rel_path, cur_fn.as_deref()),
                            ),
                        });
                    }
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    if d5.enabled()
                        && cur_det
                        && !r3_covers
                        && !in_test
                        && sig.get(i + 1).is_some_and(|n| n.is_punct('!'))
                        && !allowed(&d5, rel_path, cur_fn.as_deref())
                    {
                        findings.push(Finding {
                            rule: "det_transitive",
                            file: rel_path.to_string(),
                            line: t.line,
                            message: format!(
                                "`{}!` in fn `{}`, reachable from a #[deterministic] \
                                 root (D5): deterministic-closure code must not contain \
                                 panicking macros{}",
                                t.text,
                                cur_fn.as_deref().unwrap_or("?"),
                                via_note(graph, rel_path, cur_fn.as_deref()),
                            ),
                        });
                    }
                }
                _ => {}
            },
            _ => {}
        }

        // D4: sync discipline in the listed concurrency modules. Checked
        // outside the ident match so it cannot shadow the D1/D2/D5 arms.
        if d4_applies && !in_test && t.kind == TokKind::Ident {
            let label: Option<String> = match t.text.as_str() {
                "Mutex" | "RwLock" | "Condvar" => Some(t.text.clone()),
                "Relaxed" => Some("Ordering::Relaxed".to_string()),
                "spawn"
                    if i >= 3
                        && sig[i - 1].is_punct(':')
                        && sig[i - 2].is_punct(':')
                        && sig[i - 3].is_ident("thread") =>
                {
                    Some("thread::spawn".to_string())
                }
                s if s.starts_with("Atomic") && s.len() > "Atomic".len() => Some(t.text.clone()),
                _ => None,
            };
            if let Some(what) = label {
                if !allowed(&d4, rel_path, cur_fn.as_deref())
                    && seen_d4.insert((t.line, what.clone()))
                {
                    findings.push(Finding {
                        rule: "det_sync",
                        file: rel_path.to_string(),
                        line: t.line,
                        message: format!(
                            "`{what}` in concurrency module (D4): merged counters must \
                             flow through scoped joins or ordered channels, never shared \
                             mutable state — locks, relaxed atomics and detached threads \
                             admit schedule-dependent results; add a reviewed waiver if \
                             the value provably never reaches a digest"
                        ),
                    });
                }
            }
        }

        // D5 (panic half): division/modulo inside an index expression, same
        // predicate as R3 but scoped by the closure instead of module lists.
        if t.is_punct('[') && d5.enabled() && cur_det && !r3_covers && !in_test {
            let is_index = i > 0
                && match &sig[i - 1].kind {
                    TokKind::Ident => !NON_INDEX_KEYWORDS.contains(&sig[i - 1].text.as_str()),
                    TokKind::Punct(']') | TokKind::Punct(')') => true,
                    _ => false,
                };
            if is_index && !allowed(&d5, rel_path, cur_fn.as_deref()) {
                let (_, end) = scan_group(&sig, i);
                if let Some(bad) =
                    sig[i..end].iter().find(|x| x.is_punct('/') || x.is_punct('%'))
                {
                    findings.push(Finding {
                        rule: "det_transitive",
                        file: rel_path.to_string(),
                        line: bad.line,
                        message: format!(
                            "division/modulo inside an index expression in fn `{}`, \
                             reachable from a #[deterministic] root (D5): hoist the \
                             quotient into a named local so the bounds reasoning is \
                             visible",
                            cur_fn.as_deref().unwrap_or("?"),
                        ),
                    });
                }
            }
        }

        // D5 (alloc half): heap allocation in hot-closure helpers that are
        // not #[hot_path]-marked themselves (R4 owns the marked roots).
        if d5.enabled()
            && cur_hot
            && !cur_hot_root
            && !in_test
            && !allowed(&d5, rel_path, cur_fn.as_deref())
        {
            if let Some(what) = alloc_pattern(&sig, i) {
                findings.push(Finding {
                    rule: "det_transitive",
                    file: rel_path.to_string(),
                    line: t.line,
                    message: format!(
                        "heap allocation (`{what}`) in fn `{}`, reachable from a \
                         #[hot_path] root (D5): the no-alloc obligation propagates \
                         through the call graph — preallocate in the constructor or \
                         waive with a justification{}",
                        cur_fn.as_deref().unwrap_or("?"),
                        hot_via_note(graph, rel_path, cur_fn.as_deref()),
                    ),
                });
            }
        }

        i += 1;
    }
    findings
}

/// Position phrase for D1 diagnostics.
fn d1_position(cur_fn: Option<&str>, cur_det: bool) -> String {
    match cur_fn {
        Some(f) if cur_det => format!("in deterministic-closure fn `{f}`"),
        _ => "in a type/signature position of a file with deterministic-closure functions"
            .to_string(),
    }
}

/// `; obligation arrived via `X`` — how the closure reached this function.
fn via_note(graph: &CallGraph, file: &str, cur_fn: Option<&str>) -> String {
    cur_fn
        .and_then(|f| graph.obligation(file, f).det_via)
        .map(|v| format!("; obligation arrived via `{v}`"))
        .unwrap_or_default()
}

/// Same as [`via_note`] for the hot closure.
fn hot_via_note(graph: &CallGraph, file: &str, cur_fn: Option<&str>) -> String {
    cur_fn
        .and_then(|f| graph.obligation(file, f).hot_via)
        .map(|v| format!("; obligation arrived via `{v}`"))
        .unwrap_or_default()
}

/// Whether `sig[i]` is followed by a call's `(`, allowing `::<T>` turbofish.
fn is_call_head(sig: &[&Token], i: usize) -> bool {
    if sig.get(i + 1).is_some_and(|n| n.is_punct('(')) {
        return true;
    }
    if sig.get(i + 1).is_some_and(|n| n.is_punct(':'))
        && sig.get(i + 2).is_some_and(|n| n.is_punct(':'))
        && sig.get(i + 3).is_some_and(|n| n.is_punct('<'))
    {
        let mut d = 0i32;
        let mut j = i + 3;
        while j < sig.len() {
            if sig[j].is_punct('<') {
                d += 1;
            } else if sig[j].is_punct('>') && !(j > 0 && sig[j - 1].is_punct('-')) {
                d -= 1;
                if d == 0 {
                    return sig.get(j + 1).is_some_and(|n| n.is_punct('('));
                }
            }
            j += 1;
        }
    }
    false
}

/// Whether the statement containing `sig[i]` mentions `f32`/`f64` — the
/// cheap "is this reduction over floats" test. The window runs from the
/// previous `;`/`{`/`}` to the next `;` at the same nesting.
fn stmt_window_has_float(sig: &[&Token], i: usize) -> bool {
    let start = (0..i)
        .rev()
        .find(|&j| sig[j].is_punct(';') || sig[j].is_punct('{') || sig[j].is_punct('}'))
        .map_or(0, |j| j + 1);
    let end = (i..sig.len())
        .find(|&j| sig[j].is_punct(';') || sig[j].is_punct('{'))
        .unwrap_or(sig.len());
    sig[start..end]
        .iter()
        .any(|t| t.kind == TokKind::Ident && (t.text == "f32" || t.text == "f64"))
}

/// Whether an `// ORDER:` comment sits within the 3 lines above `line` (the
/// D3 analogue of R1's `// SAFETY:` convention: state why the order is
/// fixed).
fn has_order_comment(lines: &[&str], line: u32) -> bool {
    let idx = line as usize - 1;
    let lo = idx.saturating_sub(3);
    let hi = (idx + 1).min(lines.len());
    lines[lo..hi].iter().any(|l| {
        let c = l.trim_start();
        c.starts_with("//") && c.contains("ORDER:")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let owned: Vec<(String, String)> =
            files.iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        CallGraph::build(&owned)
    }

    fn cfg(toml: &str) -> Config {
        Config::parse(toml).expect("test config parses")
    }

    #[test]
    fn d1_fires_in_bodies_and_type_positions_of_det_files() {
        let src = "use std::collections::HashMap;\n\
                   struct Cache { m: HashMap<u64, u64> }\n\
                   #[deterministic]\nfn root() { let s: HashMap<u8, u8> = HashMap::new(); }\n";
        let g = graph(&[("crates/x/src/a.rs", src)]);
        let f = check_file("crates/x/src/a.rs", src, &cfg(""), &g);
        let d1: Vec<_> = f.iter().filter(|x| x.rule == "det_hash_container").collect();
        // use line, field line, body line (per-line dedup collapses the
        // double mention on the body line).
        assert_eq!(d1.len(), 3, "{f:?}");
    }

    #[test]
    fn d1_silent_without_det_fns_or_with_waiver() {
        let src = "use std::collections::HashMap;\nfn free() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let g = graph(&[("crates/x/src/a.rs", src)]);
        assert!(check_file("crates/x/src/a.rs", src, &cfg(""), &g).is_empty());

        let src2 = "#[deterministic]\nfn root() { let m: HashMap<u8, u8> = HashMap::new(); }\n";
        let g2 = graph(&[("crates/x/src/a.rs", src2)]);
        let c = cfg("[rules.det_hash_container]\nallow = [\"a.rs::root\"]\n");
        assert!(check_file("crates/x/src/a.rs", src2, &c, &g2).is_empty());
    }

    #[test]
    fn d2_fires_on_each_ambient_source_only_in_closure() {
        let src = "#[deterministic]\nfn root() {\n    let t = Instant::now();\n    \
                   let s = SystemTime::now();\n    let id = thread::current();\n    \
                   let n = available_parallelism();\n}\n\
                   fn cold() { let t = Instant::now(); }\n";
        let g = graph(&[("crates/x/src/a.rs", src)]);
        let f = check_file("crates/x/src/a.rs", src, &cfg(""), &g);
        let d2: Vec<_> = f.iter().filter(|x| x.rule == "det_ambient").collect();
        assert_eq!(d2.len(), 4, "{f:?}");
    }

    #[test]
    fn d3_fires_on_float_reduction_and_order_comment_excuses() {
        let src = "#[deterministic]\nfn root(xs: &[f64]) -> f64 {\n    \
                   let bad: f64 = xs.iter().sum();\n    \
                   // ORDER: slice order is shard order, fixed by construction.\n    \
                   let good: f64 = xs.iter().sum();\n    \
                   let ints: u64 = xs.iter().map(|x| *x as u64).sum::<u64>();\n    \
                   bad + good + ints as f64\n}\n";
        let g = graph(&[("crates/x/src/a.rs", src)]);
        let f = check_file("crates/x/src/a.rs", src, &cfg(""), &g);
        let d3: Vec<_> = f.iter().filter(|x| x.rule == "det_float_order").collect();
        assert_eq!(d3.len(), 1, "{f:?}");
        assert_eq!(d3[0].line, 3);
    }

    #[test]
    fn d4_fires_only_in_listed_modules() {
        let src = "fn f() {\n    let m = Mutex::new(0);\n    let a = AtomicU64::new(0);\n    \
                   a.load(Ordering::Relaxed);\n    std::thread::spawn(|| {});\n}\n";
        let g = graph(&[("crates/x/src/pipe.rs", src)]);
        let c = cfg("[rules.det_sync]\nmodules = [\"pipe.rs\"]\n");
        let f = check_file("crates/x/src/pipe.rs", src, &c, &g);
        let d4: Vec<_> = f.iter().filter(|x| x.rule == "det_sync").collect();
        assert_eq!(d4.len(), 4, "{f:?}");
        // Same file without the module listing: silent.
        assert!(check_file("crates/x/src/pipe.rs", src, &cfg(""), &g).is_empty());
    }

    #[test]
    fn d5_propagates_no_panic_two_hops_and_respects_r3_modules() {
        let src = "#[deterministic]\nfn root() { mid(); }\nfn mid() { leaf(); }\n\
                   fn leaf(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let g = graph(&[("crates/x/src/a.rs", src)]);
        let f = check_file("crates/x/src/a.rs", src, &cfg(""), &g);
        let d5: Vec<_> = f.iter().filter(|x| x.rule == "det_transitive").collect();
        assert_eq!(d5.len(), 1, "{f:?}");
        assert!(d5[0].message.contains("via `mid`"), "{}", d5[0].message);
        // The same file listed as an R3 module hands jurisdiction to R3.
        let c = cfg("[rules.no_panic]\nmodules = [\"a.rs\"]\n");
        let f2 = check_file("crates/x/src/a.rs", src, &c, &g);
        assert!(f2.iter().all(|x| x.rule != "det_transitive"), "{f2:?}");
    }

    #[test]
    fn d5_propagates_no_alloc_to_unmarked_hot_helpers() {
        let src = "#[hot_path]\nfn hot() { helper(); }\n\
                   fn helper() { let v: Vec<u8> = Vec::new(); }\n";
        let g = graph(&[("crates/x/src/a.rs", src)]);
        let f = check_file("crates/x/src/a.rs", src, &cfg(""), &g);
        let d5: Vec<_> = f.iter().filter(|x| x.rule == "det_transitive").collect();
        assert_eq!(d5.len(), 1, "{f:?}");
        assert!(d5[0].message.contains("Vec::new"), "{}", d5[0].message);
    }
}
