//! A lightweight Rust lexer for the lint pass.
//!
//! The external `syn` crate is unavailable in this build environment, so the
//! lint rules run over a hand-rolled token stream instead of an AST. The
//! lexer understands exactly what the rules need to be sound against: line
//! and (nested) block comments, string/char/byte/raw-string literals, and
//! lifetimes — so that an `unwrap()` inside a doc comment or a `panic!`
//! inside a string literal can never produce a finding. Everything else is
//! identifiers, numbers and single-character punctuation.

/// The kind of one lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `unwrap`, ...).
    Ident,
    /// Numeric literal (lexed as one blob; rules never inspect digits).
    Number,
    /// String, char, byte or raw-string literal (contents dropped).
    Literal,
    /// `// ...` comment, including doc comments. Text retained for
    /// `SAFETY:` detection.
    LineComment,
    /// `/* ... */` comment (nesting handled). Text retained.
    BlockComment,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// Any single punctuation character: `{ } [ ] ( ) . , ; / % ! # ...`.
    Punct(char),
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokKind,
    /// Token text. Empty for `Literal`/`Number` (rules don't need it);
    /// comment text and identifier names are retained.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// Tokenizes `src`. Never fails: unterminated constructs run to the end of
/// the input (the lint is diagnostic tooling, not a compiler front end).
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let n = b.len();

    // Advances `line` over every newline in b[from..to].
    let count_lines = |from: usize, to: usize, b: &[char]| -> u32 {
        b[from..to].iter().filter(|&&c| c == '\n').count() as u32
    };

    while i < n {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }
        // Comments.
        if c == '/' && i + 1 < n && (b[i + 1] == '/' || b[i + 1] == '*') {
            let start = i;
            let start_line = line;
            if b[i + 1] == '/' {
                while i < n && b[i] != '\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::LineComment,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            } else {
                i += 2;
                let mut depth = 1;
                while i < n && depth > 0 {
                    if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                line += count_lines(start, i, &b);
                toks.push(Token {
                    kind: TokKind::BlockComment,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br#"..."# (any # count).
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let start = i;
            let start_line = line;
            // Skip prefix letters.
            while i < n && (b[i] == 'r' || b[i] == 'b') {
                i += 1;
            }
            let mut hashes = 0;
            while i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // opening quote
            loop {
                if i >= n {
                    break;
                }
                if b[i] == '"' {
                    let mut j = i + 1;
                    let mut h = 0;
                    while j < n && b[j] == '#' && h < hashes {
                        h += 1;
                        j += 1;
                    }
                    if h == hashes {
                        i = j;
                        break;
                    }
                }
                i += 1;
            }
            line += count_lines(start, i, &b);
            toks.push(Token { kind: TokKind::Literal, text: String::new(), line: start_line });
            continue;
        }
        // Normal strings (and byte strings — the `b` lexes as an ident
        // immediately before, which is harmless).
        if c == '"' {
            let start = i;
            let start_line = line;
            i += 1;
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            line += count_lines(start, i.min(n), &b);
            toks.push(Token { kind: TokKind::Literal, text: String::new(), line: start_line });
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < n && (b[i + 1].is_alphanumeric() || b[i + 1] == '_') {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j < n && b[j] == '\'' && j == i + 2 {
                    // 'x' — a char literal.
                    toks.push(Token { kind: TokKind::Literal, text: String::new(), line });
                    i = j + 1;
                    continue;
                }
                toks.push(Token {
                    kind: TokKind::Lifetime,
                    text: b[i..j].iter().collect(),
                    line,
                });
                i = j;
                continue;
            }
            // Escaped char literal: '\n', '\'', '\u{...}'.
            let mut j = i + 1;
            if j < n && b[j] == '\\' {
                j += 2;
                // \u{...}
                while j < n && b[j] != '\'' {
                    j += 1;
                }
            }
            while j < n && b[j] != '\'' {
                j += 1;
            }
            toks.push(Token { kind: TokKind::Literal, text: String::new(), line });
            i = (j + 1).min(n);
            continue;
        }
        // Identifiers / keywords.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numbers (including suffixes like 0xFFu64, 1.5e3; lexed greedily).
        if c.is_ascii_digit() {
            while i < n
                && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit())
            {
                i += 1;
            }
            toks.push(Token { kind: TokKind::Number, text: String::new(), line });
            continue;
        }
        // Everything else: single punctuation char.
        toks.push(Token { kind: TokKind::Punct(c), text: String::new(), line });
        i += 1;
    }
    toks
}

/// Whether position `i` (on an `r`/`b`) starts a raw string literal.
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    // r" r#" br" br#" rb... — scan letters then hashes then a quote.
    let mut j = i;
    let mut letters = 0;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && letters < 2 {
        j += 1;
        letters += 1;
    }
    if letters == 0 || !b[i..j].contains(&'r') {
        return false;
    }
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    j < b.len() && b[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_opaque() {
        let toks = lex("let x = \"panic!\"; // unwrap()\n/* expect( */ y");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, ["let", "x", "y"]);
        assert!(toks.iter().any(|t| t.kind == TokKind::LineComment && t.text.contains("unwrap")));
        assert!(toks.iter().any(|t| t.kind == TokKind::BlockComment));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a u8) { let c = 'x'; let nl = '\\n'; }");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Literal).count(), 2);
    }

    #[test]
    fn raw_strings_skip_contents() {
        let toks = lex("let s = r#\"unsafe { panic!() }\"#; end");
        assert!(toks.iter().all(|t| !t.is_ident("unsafe")));
        assert!(toks.iter().any(|t| t.is_ident("end")));
    }

    #[test]
    fn nested_block_comments() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert!(toks[1].is_ident("x"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }
}
