//! Machine-readable JSON report for CI artifacts.
//!
//! Hand-rolled serialization (no registry access for `serde`), mirroring the
//! writer idiom in `icp-experiments::json`. Schema:
//!
//! ```json
//! {
//!   "schema": "icp-lint/v2",
//!   "schema_version": 2,
//!   "root": "...",
//!   "files_scanned": 42,
//!   "findings": [{"rule": "...", "file": "...", "line": 7, "message": "..."}],
//!   "counts": {"safety_comment": 0, ...}
//! }
//! ```
//!
//! v2 added the determinism rules D1–D5 to `counts` and the numeric
//! `schema_version` field so CI diffs can gate on an exact version.

use crate::rules::{Finding, RULE_NAMES};

/// The result of one workspace analysis.
#[derive(Clone, Debug)]
pub struct AnalysisReport {
    /// Root the walk started from (as given).
    pub root: String,
    /// Number of `.rs` files lexed and checked.
    pub files_scanned: usize,
    /// All findings, in file-walk order.
    pub findings: Vec<Finding>,
}

impl AnalysisReport {
    /// Findings for one rule.
    pub fn count(&self, rule: &str) -> usize {
        self.findings.iter().filter(|f| f.rule == rule).count()
    }

    /// Whether the run is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Serializes the report (stable field order, `\n`-terminated).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.findings.len() * 128);
        out.push_str("{\"schema\":\"icp-lint/v2\",\"schema_version\":2,\"root\":");
        json_string(&mut out, &self.root);
        out.push_str(&format!(",\"files_scanned\":{},\"findings\":[", self.files_scanned));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"rule\":");
            json_string(&mut out, f.rule);
            out.push_str(",\"file\":");
            json_string(&mut out, &f.file);
            out.push_str(&format!(",\"line\":{},\"message\":", f.line));
            json_string(&mut out, &f.message);
            out.push('}');
        }
        out.push_str("],\"counts\":{");
        for (i, rule) in RULE_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, rule);
            out.push_str(&format!(":{}", self.count(rule)));
        }
        out.push_str("}}\n");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, escapes).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_counts() {
        let report = AnalysisReport {
            root: ".".to_string(),
            files_scanned: 2,
            findings: vec![Finding {
                rule: "no_panic",
                file: "a/b.rs".to_string(),
                line: 3,
                message: "said \"boom\"\n".to_string(),
            }],
        };
        let j = report.to_json();
        assert!(j.contains("\"schema\":\"icp-lint/v2\""), "{j}");
        assert!(j.contains("\"schema_version\":2"), "{j}");
        assert!(j.contains("\"files_scanned\":2"), "{j}");
        assert!(j.contains("\"det_hash_container\":0"), "{j}");
        assert!(j.contains("\\\"boom\\\"\\n"), "{j}");
        assert!(j.contains("\"no_panic\":1"), "{j}");
        assert!(j.contains("\"safety_comment\":0"), "{j}");
        assert!(!report.is_clean());
    }
}
