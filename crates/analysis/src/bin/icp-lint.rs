//! `icp-lint`: the workspace lint pass as a CLI.
//!
//! ```text
//! cargo run -p icp-analysis --bin icp-lint -- [--root DIR] [--config FILE]
//!                                             [--json FILE] [-D|--deny] [-q]
//!                                             [--closures]
//! ```
//!
//! Walks the workspace, applies the per-file rules R1–R4 and the call-graph
//! determinism rules D1–D5 from `analysis.toml` (found at `--root`, or
//! overridden with `--config`), prints one diagnostic per finding, optionally
//! writes the JSON report, and exits non-zero when findings exist and
//! severity is `deny` (the config default; `-D` forces it regardless of
//! config). `--closures` dumps the `#[deterministic]` / `#[hot_path]`
//! transitive closures instead of linting — the fastest way to see what a new
//! annotation pulls into scope before the rules start firing on it.

use std::path::PathBuf;
use std::process::ExitCode;

use icp_analysis::{analyze_workspace, Config, RULE_NAMES};

struct Args {
    root: PathBuf,
    config: Option<PathBuf>,
    json: Option<PathBuf>,
    deny: bool,
    quiet: bool,
    closures: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        config: None,
        json: None,
        deny: false,
        quiet: false,
        closures: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => args.root = it.next().ok_or("--root needs a value")?.into(),
            "--config" => args.config = Some(it.next().ok_or("--config needs a value")?.into()),
            "--json" => args.json = Some(it.next().ok_or("--json needs a value")?.into()),
            "-D" | "--deny" => args.deny = true,
            "-q" | "--quiet" => args.quiet = true,
            "--closures" => args.closures = true,
            "-h" | "--help" => {
                println!(
                    "icp-lint: repo-specific static analysis (rules R1-R4, D1-D5)\n\n\
                     USAGE: icp-lint [--root DIR] [--config FILE] [--json FILE] [-D] [-q]\n       \
                     icp-lint --closures [--root DIR] [--config FILE]\n\n\
                     OPTIONS:\n  \
                     --root DIR     workspace root to scan (default .)\n  \
                     --config FILE  analysis.toml (default <root>/analysis.toml)\n  \
                     --json FILE    write the machine-readable report here\n  \
                     -D, --deny     exit non-zero on any finding, overriding config severity\n  \
                     -q, --quiet    suppress per-finding diagnostics\n  \
                     --closures     print the #[deterministic] / #[hot_path] call-graph\n                 \
                     closures instead of linting"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("icp-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| args.root.join("analysis.toml"));
    let cfg = if config_path.exists() {
        match Config::load(&config_path) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("icp-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        // No config: all rules enabled with defaults (R3 then has no module
        // list and reports nothing; R2 has no allowlist and flags every
        // unsafe).
        Config::default()
    };
    let unknown = cfg.unknown_rule_names(RULE_NAMES);
    if !unknown.is_empty() {
        eprintln!(
            "icp-lint: unknown rule table(s) in {}: {} (known: {})",
            config_path.display(),
            unknown.join(", "),
            RULE_NAMES.join(", ")
        );
        return ExitCode::from(2);
    }

    if args.closures {
        let graph = match icp_analysis::build_call_graph(&args.root, &cfg) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("icp-lint: walk failed: {e}");
                return ExitCode::from(2);
            }
        };
        let det = graph.det_closure_names();
        let hot = graph.hot_closure_names();
        println!("# deterministic closure ({} fns)", det.len());
        for name in &det {
            println!("{name}");
        }
        println!("# hot closure ({} fns)", hot.len());
        for name in &hot {
            println!("{name}");
        }
        return ExitCode::SUCCESS;
    }

    let report = match analyze_workspace(&args.root, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("icp-lint: walk failed: {e}");
            return ExitCode::from(2);
        }
    };

    if !args.quiet {
        for f in &report.findings {
            println!("{f}");
        }
    }
    if let Some(json_path) = &args.json {
        if let Err(e) = std::fs::write(json_path, report.to_json()) {
            eprintln!("icp-lint: cannot write {}: {e}", json_path.display());
            return ExitCode::from(2);
        }
    }
    let deny = args.deny || cfg.severity == "deny";
    if !args.quiet {
        println!(
            "icp-lint: {} file(s), {} finding(s) [{}]",
            report.files_scanned,
            report.findings.len(),
            if deny { "deny" } else { "warn" }
        );
    }
    if deny && !report.is_clean() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
